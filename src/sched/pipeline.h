/**
 * @file
 * End-to-end compilation pipeline: region formation -> lowering ->
 * scheduling -> performance estimate, for one function and one
 * configuration. This is the library's main entry point and the
 * workhorse behind every experiment.
 *
 * Compilation is embarrassingly parallel across (function,
 * configuration) pairs — the paper's own evaluation sweeps schemes x
 * heuristics x machine models over every benchmark — so the driver
 * also offers runPipelineParallel: shard a batch of PipelineJobs
 * over a work-stealing ThreadPool, compile each one on a private
 * clone, and return results in input order, bit-identical to the
 * sequential path for any thread count.
 */

#ifndef TREEGION_SCHED_PIPELINE_H
#define TREEGION_SCHED_PIPELINE_H

#include <functional>
#include <string>
#include <vector>

#include "region/formation.h"
#include "region/region_stats.h"
#include "sched/list_scheduler.h"
#include "sched/machine_model.h"
#include "sched/perf_model.h"
#include "support/remarks.h"
#include "support/thread_pool.h"

namespace treegion::sched {

/** Region formation schemes the paper compares. */
enum class RegionScheme {
    BasicBlock,       ///< baseline
    Slr,              ///< simple linear regions
    Superblock,       ///< traces + tail duplication (mutates the CFG)
    Treegion,         ///< Fig. 2 treegions
    TreegionTailDup,  ///< Fig. 11 treegions (mutates the CFG)
    Hyperblock,       ///< if-converted DAG regions (the paper's
                      ///< planned comparison point)
};

/** @return display name of @p scheme. */
std::string regionSchemeName(RegionScheme scheme);

/** Parse a regionSchemeName() token. @return false on error. */
bool parseRegionScheme(const std::string &name, RegionScheme &out);

/** Parse a heuristic name ("gw" or "global-weight" style). */
bool parseHeuristicName(const std::string &name, Heuristic &out);

/** Full pipeline configuration. */
struct PipelineOptions
{
    RegionScheme scheme = RegionScheme::Treegion;
    MachineModel model = MachineModel::wide4U();
    SchedOptions sched;
    region::TailDupLimits tail_dup;   ///< for TreegionTailDup
    region::SuperblockOptions superblock;  ///< for Superblock
    region::HyperblockOptions hyperblock;  ///< for Hyperblock
};

/**
 * Render @p options as one canonical "key=value key=value ..." line
 * covering every field (scheme, heuristic, width, scheduler flags,
 * tail-dup / superblock / hyperblock limits). Two PipelineOptions
 * encode identically iff they configure identical compilations, so
 * the encoding doubles as the options half of the compile-cache key
 * and as the wire format of the compile service.
 */
std::string encodePipelineOptions(const PipelineOptions &options);

/**
 * Parse encodePipelineOptions() output (any subset of the fields, in
 * any order; omitted fields keep their defaults). @return false and
 * set @p error on an unknown key or a malformed value.
 */
bool parsePipelineOptions(const std::string &text,
                          PipelineOptions &out,
                          std::string *error = nullptr);

/**
 * Peak heap footprint per pipeline stage, in bytes of growth above
 * the live bytes at stage entry. Filled only when an allocation
 * interposer feeds support/memstat.h AND the caller enabled
 * memstatSetStageProfiling (calibration and mem tests), and only
 * meaningfully when one thread compiles at a time — the window
 * counters are process-global. sched_arena_high_water_bytes is the
 * calling thread's scheduling-arena high-water mark and is filled
 * unconditionally.
 */
struct StageMemStats
{
    uint64_t formation_peak_bytes = 0;
    uint64_t liveness_peak_bytes = 0;
    uint64_t schedule_peak_bytes = 0;
    uint64_t sched_arena_high_water_bytes = 0;
};

/** Everything the experiments need from one pipeline run. */
struct PipelineResult
{
    FunctionSchedule schedule;
    region::RegionSet regions;
    region::RegionStats region_stats;
    double estimated_time = 0.0;
    double code_expansion = 1.0;  ///< vs. the pre-formation function
    RegionSchedStats total_sched_stats;
    StageMemStats mem;  ///< per-stage peak-footprint telemetry
};

/**
 * Run the pipeline on @p fn.
 *
 * Tail-duplicating schemes mutate @p fn (clone blocks, split profile
 * flow); clone the function first if the original is still needed.
 */
PipelineResult runPipeline(ir::Function &fn,
                           const PipelineOptions &options);

/** A pipeline run on a private clone of the input function. */
struct ClonedPipelineRun
{
    /** The compiled clone (tail-duplicating schemes mutate it). */
    ir::Function fn;
    PipelineResult result;
    double compile_ms = 0.0;  ///< wall time of the pipeline run
};

/**
 * Const-safe pipeline entry point: clone @p fn, run the pipeline on
 * the clone, and return both. The input is never mutated, so the
 * same function can be compiled under any number of configurations
 * concurrently — this is the only pipeline entry point shared state
 * (the compile service, the fuzzer, the parallel driver) should use.
 */
ClonedPipelineRun runPipelineOnClone(const ir::Function &fn,
                                     const PipelineOptions &options);

/**
 * The paper's baseline: basic-block scheduling on the single-issue
 * machine, run on a private clone. @return its estimated execution
 * time for @p fn.
 */
double estimateBaselineTime(const ir::Function &fn);

/**
 * One unit of batched compilation: a function x configuration pair.
 * The function is never mutated — every job compiles a private
 * clone, so the same function may appear in any number of jobs.
 */
struct PipelineJob
{
    const ir::Function *fn = nullptr;  ///< profiled input function
    PipelineOptions options;
    std::string label;  ///< trace/report label, e.g. "gcc/tree/gw"
    /** Collect decision remarks for this job (support/remarks.h). */
    bool collect_remarks = false;
};

/** Outcome of one PipelineJob. */
struct PipelineJobResult
{
    /** The compiled clone (tail-duplicating schemes mutate it). */
    ir::Function fn;
    PipelineResult result;
    std::string label;        ///< copied from the job
    double compile_ms = 0.0;  ///< wall time of this job's pipeline run
    /** Decision remarks, when the job asked for them. The stream is
     * private to the job, so its order is deterministic and identical
     * for any worker count. */
    support::RemarkStream remarks;
    /** The admission gate's reservation for this job (0 when the run
     * was unbudgeted). */
    uint64_t projected_peak_bytes = 0;
    /** Index of the job in the submitted batch. Sink consumers see
     * results in completion order; this is how they restore input
     * order without retaining whole results. */
    size_t job_index = 0;
};

/**
 * Compile every job in @p jobs across @p num_threads workers
 * (0 = one per hardware thread) and return the results **in input
 * order**. Each job runs on a private clone of its function, so
 * results are bit-identical to calling runPipeline sequentially on
 * clones, regardless of thread count or scheduling interleaving.
 *
 * With num_threads == 1 the jobs run inline on the calling thread
 * (no pool is created). Pass @p pool to reuse an existing pool
 * (num_threads is then ignored).
 */
std::vector<PipelineJobResult>
runPipelineParallel(const std::vector<PipelineJob> &jobs,
                    size_t num_threads = 0,
                    support::ThreadPool *pool = nullptr);

/** Configuration for a budgeted runPipelineParallel run. */
struct ParallelRunOptions
{
    /** Worker count; 0 = one per hardware thread. */
    size_t num_threads = 0;
    /** Reuse an existing pool (num_threads is then ignored). */
    support::ThreadPool *pool = nullptr;
    /**
     * Peak-memory budget in bytes; 0 = unbudgeted FIFO (identical to
     * the plain overload). When set, jobs are admitted through a
     * support::MemoryGate: a job is submitted to the pool only once
     * its projected peak (sched/mem_estimate.h) fits under what
     * remains of the budget, largest-projected-first among the jobs
     * that fit — the ROMA ordering, which minimizes the makespan
     * cost of the memory ceiling. A job projected over the whole
     * budget runs solo instead of deadlocking.
     */
    uint64_t mem_budget_bytes = 0;
    /**
     * Reserve through this gate instead of a private one (its budget
     * wins over mem_budget_bytes). Lets tests and benches observe
     * inUseBytes/highWaterBytes across the run.
     */
    support::MemoryGate *gate = nullptr;
    /**
     * Consume each result as its job completes instead of returning
     * the batch: when set, every PipelineJobResult is handed to this
     * callback (calls are serialized, but completion order depends
     * on the pool interleaving) and runPipelineParallel returns an
     * empty vector. Retaining a whole batch's results makes live
     * memory grow with the batch no matter when jobs start, which
     * swamps any admission policy — streaming consumption is what
     * keeps the peak proportional to the jobs actually in flight,
     * so budgeted batch drivers should always set a sink.
     */
    std::function<void(PipelineJobResult &&)> sink;
};

/**
 * runPipelineParallel with memory-budgeted admission. Results are
 * still returned in input order and are bit-identical to the
 * unbudgeted path — the budget only changes when each job starts.
 */
std::vector<PipelineJobResult>
runPipelineParallel(const std::vector<PipelineJob> &jobs,
                    const ParallelRunOptions &run);

} // namespace treegion::sched

#endif // TREEGION_SCHED_PIPELINE_H
