#include "sched/list_scheduler.h"

#include <algorithm>
#include <memory>

#include <map>
#include <set>

#include "sched/ddg.h"
#include "sched/hyperblock_lowering.h"
#include "support/logging.h"
#include "support/remarks.h"
#include "support/trace.h"

namespace treegion::sched {

namespace {

/** Mutable per-node scheduling state. */
struct NodeState
{
    bool scheduled = false;
    bool elided = false;
    int cycle = -1;
    int slot = -1;
    size_t rep = 0;  ///< representative node when elided
};

class Scheduler
{
  public:
    Scheduler(ir::Function &fn, LoweredRegion lowered,
              const MachineModel &model, const SchedOptions &options)
        : fn_(fn),
          lowered_(std::move(lowered)),
          ddg_(lowered_),
          model_(model),
          options_(options),
          state_(lowered_.ops.size())
    {
    }

    RegionSchedule run();

  private:
    /** Effective position of a (possibly elided) scheduled node. */
    std::pair<int, int>
    position(size_t i) const
    {
        const NodeState &s = state_[i];
        if (s.elided)
            return position(s.rep);
        return {s.cycle, s.slot};
    }

    /**
     * Can node @p i issue at (@p cycle, @p slot)? All DDG
     * predecessors must be scheduled with their latencies satisfied.
     */
    bool
    ready(size_t i, int cycle, int slot) const
    {
        for (const DdgEdge &e : ddg_.preds(i)) {
            if (e.virtual_ctrl)
                continue;  // priority-only: speculation may break it
            const NodeState &p = state_[e.other];
            if (!p.scheduled)
                return false;
            const auto [pc, ps] = position(e.other);
            if (e.latency > 0) {
                if (cycle < pc + e.latency)
                    return false;
            } else if (e.slot_ordered) {
                if (pc > cycle || (pc == cycle && ps >= slot))
                    return false;
            } else {
                if (cycle < pc)
                    return false;
            }
        }
        return true;
    }

    /**
     * Find a scheduled twin for dominator-parallelism elision: same
     * duplication group, same opcode/compare, identical (renamed)
     * sources, unguarded computation, and a position that also
     * satisfies @p i's memory-ordering edges.
     *
     * @return twin index, or npos
     */
    size_t
    findTwin(size_t i) const
    {
        const LoweredOp &lop = lowered_.ops[i];
        if (lop.kind != LoweredKind::Computation || lop.pinned ||
            lop.op.guard || lop.op.dupGroup == 0 ||
            lop.op.dsts.size() != 1) {
            return npos;
        }
        for (size_t j = 0; j < lowered_.ops.size(); ++j) {
            // Elided nodes are skipped: their destination register is
            // never actually written, so aliasing to it would read
            // garbage. The surviving representative qualifies on its
            // own (same duplication group and sources).
            if (j == i || !state_[j].scheduled || state_[j].elided)
                continue;
            const LoweredOp &twin = lowered_.ops[j];
            if (twin.op.dupGroup != lop.op.dupGroup ||
                twin.op.opcode != lop.op.opcode ||
                twin.op.cmp != lop.op.cmp || twin.op.guard ||
                twin.op.srcs != lop.op.srcs ||
                twin.op.dsts.size() != 1) {
                continue;
            }
            // The twin's position must satisfy this op's memory
            // ordering edges (the value edges are identical by source
            // equality).
            const auto [tc, ts] = position(j);
            bool order_ok = true;
            for (const DdgEdge &e : ddg_.preds(i)) {
                if (e.latency == 0 && e.slot_ordered) {
                    const auto [pc, ps] = position(e.other);
                    if (!state_[e.other].scheduled ||
                        pc > tc || (pc == tc && ps >= ts)) {
                        order_ok = false;
                        break;
                    }
                }
            }
            if (order_ok)
                return j;
        }
        return npos;
    }

    /** Alias @p i's destination to its twin's in all pending readers. */
    void
    elide(size_t i, size_t twin)
    {
        const ir::Reg from = lowered_.ops[i].op.dsts[0];
        const ir::Reg to = lowered_.ops[twin].op.dsts[0];
        for (size_t k = 0; k < lowered_.ops.size(); ++k) {
            if (!state_[k].scheduled)
                lowered_.ops[k].op.renameUses(from, to);
        }
        for (LoweredExit &exit : lowered_.exits) {
            for (ExitCopy &copy : exit.copies) {
                if (copy.src == from)
                    copy.src = to;
            }
        }
        state_[i].scheduled = true;
        state_[i].elided = true;
        state_[i].rep = twin;
        support::remark(support::RemarkKind::Elided)
            .block(lowered_.ops[i].home)
            .op(lowered_.ops[i].op.id)
            .arg("twin", lowered_.ops[twin].op.id)
            .arg("root", lowered_.root);
    }

    /**
     * Report priority ties: adjacent pairs of the sorted order whose
     * keys are equal under @p heuristic, i.e. decided only by the
     * deterministic lowering-order fallback.
     */
    void
    reportTieBreaks(const std::vector<size_t> &order,
                    const std::vector<PriorityKeys> &keys,
                    Heuristic heuristic) const
    {
        auto tied = [&](const PriorityKeys &a, const PriorityKeys &b) {
            switch (heuristic) {
              case Heuristic::DependenceHeight:
                return a.height == b.height;
              case Heuristic::ExitCount:
                return a.exit_count == b.exit_count &&
                       a.height == b.height;
              case Heuristic::GlobalWeight:
                return a.weight == b.weight && a.height == b.height;
              case Heuristic::WeightedCount:
                return a.weight == b.weight &&
                       a.exit_count == b.exit_count &&
                       a.height == b.height;
            }
            return false;
        };
        for (size_t k = 0; k + 1 < order.size(); ++k) {
            const size_t w = order[k], l = order[k + 1];
            if (!tied(keys[w], keys[l]))
                continue;
            support::remark(support::RemarkKind::TieBreak)
                .block(lowered_.ops[w].home)
                .op(lowered_.ops[w].op.id)
                .arg("loser", lowered_.ops[l].op.id)
                .arg("height", keys[w].height)
                .arg("exits", keys[w].exit_count)
                .arg("weight", keys[w].weight)
                .arg("loser_height", keys[l].height)
                .arg("loser_exits", keys[l].exit_count)
                .arg("loser_weight", keys[l].weight);
        }
    }

    static constexpr size_t npos = static_cast<size_t>(-1);

    ir::Function &fn_;
    LoweredRegion lowered_;
    Ddg ddg_;
    MachineModel model_;
    SchedOptions options_;
    std::vector<NodeState> state_;
};

RegionSchedule
Scheduler::run()
{
    const size_t n = lowered_.ops.size();
    const auto keys = computePriorityKeys(fn_, lowered_, ddg_);
    auto order = sortByPriority(keys, options_.heuristic);
    if (support::remarksEnabled())
        reportTieBreaks(order, keys, options_.heuristic);

    // Retire-as-soon-as-possible rule: a ready exit branch fires at
    // its earliest legal cycle (its dependences - predicate, pinned
    // stores, live-out producers - already encode when the exit may
    // be taken), so exits precede computation in the pick order. The
    // heuristic still decides everything that matters: the order of
    // computation determines when each path's producers are done and
    // hence when its exit becomes ready.
    std::stable_partition(order.begin(), order.end(), [&](size_t i) {
        return lowered_.ops[i].kind == LoweredKind::ExitBranch;
    });

    size_t scheduled_count = 0;
    size_t elided_count = 0;
    int cycle = 0;
    const int max_cycles =
        static_cast<int>(n) * 16 + 1024;  // runaway guard

    while (scheduled_count < n) {
        TG_ASSERT(cycle < max_cycles);
        int slots_used = 0;
        bool progress = true;
        while (progress) {
            progress = false;
            for (const size_t i : order) {
                if (state_[i].scheduled)
                    continue;
                // Elision consumes no slot, so test it before the
                // width check; readiness for elision only requires
                // the twin's position to satisfy the ordering edges.
                if (options_.dominator_parallelism) {
                    const size_t twin = findTwin(i);
                    if (twin != npos && ready(i, cycle, slots_used)) {
                        elide(i, twin);
                        ++scheduled_count;
                        ++elided_count;
                        progress = true;
                        continue;
                    }
                }
                if (slots_used >= model_.issue_width)
                    continue;
                if (!ready(i, cycle, slots_used))
                    continue;
                state_[i].scheduled = true;
                state_[i].cycle = cycle;
                state_[i].slot = slots_used;
                ++slots_used;
                ++scheduled_count;
                progress = true;
            }
        }
        ++cycle;
    }

    // Assemble the schedule: surviving ops sorted by (cycle, slot).
    RegionSchedule sched;
    sched.root = lowered_.root;
    sched.succs_in_region = lowered_.succs_in_region;
    sched.stats.renamed_defs = lowered_.renamed_defs;
    sched.stats.elided_ops = elided_count;

    std::vector<size_t> emit_order;
    for (size_t i = 0; i < n; ++i) {
        if (!state_[i].elided)
            emit_order.push_back(i);
    }
    std::sort(emit_order.begin(), emit_order.end(),
              [&](size_t a, size_t b) {
                  return std::make_pair(state_[a].cycle, state_[a].slot) <
                         std::make_pair(state_[b].cycle, state_[b].slot);
              });

    std::vector<size_t> lowered_to_out(n, npos);
    for (const size_t i : emit_order) {
        ScheduledOp sop;
        sop.op = lowered_.ops[i].op;
        sop.cycle = state_[i].cycle;
        sop.slot = state_[i].slot;
        sop.home = lowered_.ops[i].home;
        sop.speculative = lowered_.ops[i].kind ==
                              LoweredKind::Computation &&
                          !lowered_.ops[i].op.guard &&
                          lowered_.ops[i].home != lowered_.root;
        if (sop.speculative) {
            ++sched.stats.speculated_ops;
            support::remark(support::RemarkKind::Speculated)
                .block(sop.home)
                .op(sop.op.id)
                .arg("root", lowered_.root)
                .arg("cycle", sop.cycle)
                .arg("slot", sop.slot);
        }
        lowered_to_out[i] = sched.ops.size();
        sched.ops.push_back(std::move(sop));
        sched.length = std::max(sched.length, state_[i].cycle + 1);
    }

    for (const LoweredExit &exit : lowered_.exits) {
        ScheduledExit se;
        TG_ASSERT(lowered_to_out[exit.op_index] != npos);
        se.op_index = lowered_to_out[exit.op_index];
        se.target_slot = exit.target_slot;
        se.from = exit.from;
        se.target = exit.target;
        se.is_ret = exit.is_ret;
        se.weight = exit.weight;
        se.cycle = state_[exit.op_index].cycle;
        se.copies = exit.copies;
        sched.stats.exit_copies += exit.copies.size();
        sched.exits.push_back(std::move(se));
    }
    if (support::remarksEnabled()) {
        // Distinct exit branch ops sharing a cycle: the predicated
        // branches the paper merges into one MultiOp.
        std::map<int, std::set<size_t>> branches_at;
        for (const LoweredExit &exit : lowered_.exits)
            branches_at[state_[exit.op_index].cycle].insert(
                exit.op_index);
        for (const auto &[exit_cycle, branches] : branches_at) {
            if (branches.size() > 1) {
                support::remark(support::RemarkKind::ExitMerged)
                    .block(lowered_.root)
                    .arg("cycle", exit_cycle)
                    .arg("branches", branches.size());
            }
        }
    }
    return sched;
}

} // namespace

RegionSchedule
scheduleLoweredRegion(ir::Function &fn, LoweredRegion lowered,
                      const MachineModel &model,
                      const SchedOptions &options)
{
    // The DDG is built by the Scheduler's constructor; timing the
    // construction and the run separately gives the per-stage split
    // the tracing layer reports (ddg_build vs list_sched).
    std::unique_ptr<Scheduler> scheduler;
    {
        support::TraceScope span("ddg_build", "sched");
        scheduler = std::make_unique<Scheduler>(fn, std::move(lowered),
                                                model, options);
    }
    support::TraceScope span("list_sched", "sched");
    return scheduler->run();
}

RegionSchedule
scheduleRegion(ir::Function &fn, const region::Region &r,
               const analysis::Liveness &live, const MachineModel &model,
               const SchedOptions &options)
{
    if (r.kind() == region::RegionKind::Hyperblock) {
        LoweredRegion lowered = [&] {
            support::TraceScope span("lower", "sched");
            return lowerHyperblock(fn, r, live);
        }();
        return scheduleLoweredRegion(fn, std::move(lowered), model,
                                     options);
    }
    LowerOptions lower_options;
    lower_options.materialize_pbr = options.materialize_pbr;
    LoweredRegion lowered = [&] {
        support::TraceScope span("lower", "sched");
        return lowerRegion(fn, r, live, lower_options);
    }();
    return scheduleLoweredRegion(fn, std::move(lowered), model, options);
}

} // namespace treegion::sched
