#include "sched/list_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "sched/ddg.h"
#include "sched/hyperblock_lowering.h"
#include "support/arena.h"
#include "support/logging.h"
#include "support/remarks.h"
#include "support/trace.h"

namespace treegion::sched {

namespace {

using support::Arena;

/** Aggregated per-thread scheduler-arena statistics. */
std::atomic<uint64_t> g_arena_jobs{0};
std::atomic<uint64_t> g_arena_high_water{0};
std::atomic<uint64_t> g_arena_capacity{0};

void
raiseMax(std::atomic<uint64_t> &slot, uint64_t value)
{
    uint64_t seen = slot.load(std::memory_order_relaxed);
    while (seen < value &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

/**
 * The per-thread scheduling arena. Reset (blocks retained) at the
 * start of every compile job, so a warmed-up thread schedules with
 * zero heap allocations in the DDG + placement path — the property
 * tests/alloc_regression_test.cc pins.
 */
Arena &
schedArena()
{
    static thread_local Arena arena(1u << 20);
    return arena;
}

/**
 * The scheduling hot path over structure-of-arrays state (DESIGN.md
 * §11): every per-op attribute is a dense arena array indexed by the
 * lowered op id, the ready list is a bitset over priority ranks, and
 * dependence bookkeeping is incremental (pending-predecessor counts),
 * so each cycle touches only pred-complete candidates instead of
 * rescanning every unscheduled op.
 */
class Scheduler
{
  public:
    Scheduler(ir::Function &fn, LoweredRegion lowered,
              const MachineModel &model, const SchedOptions &options,
              Arena &arena)
        : fn_(fn),
          lowered_(std::move(lowered)),
          arena_(arena),
          index_(lowered_, arena),
          ddg_(lowered_, index_, arena),
          model_(model),
          options_(options)
    {
    }

    /** Priority sort + cycle-driven placement; no result assembly. */
    void place();

    /** Build the RegionSchedule from a completed place(). */
    RegionSchedule assemble();

    /** Schedule length of a completed place(), in cycles. */
    int
    placedLength() const
    {
        int length = 0;
        for (size_t i = 0; i < n_; ++i) {
            if (!elided_[i])
                length = std::max(length, cycle_[i] + 1);
        }
        return length;
    }

  private:
    static constexpr uint32_t npos = UINT32_MAX;

    /** Effective position of a (possibly elided) scheduled node. */
    std::pair<int, int>
    position(uint32_t i) const
    {
        while (elided_[i])
            i = rep_[i];
        return {cycle_[i], slot_[i]};
    }

    /**
     * Can node @p i issue at (@p cycle, @p slot)? All DDG
     * predecessors must be scheduled with their latencies satisfied.
     * Only called for pred-complete candidates; the slow scan handles
     * slot-ordered edges, everything else is answered by the cached
     * earliest-cycle bound.
     */
    bool
    ready(uint32_t i, int cycle, int slot) const
    {
        if (cycle < min_cycle_[i])
            return false;
        if (!has_slot_pred_[i])
            return true;
        for (const DdgEdge &e : ddg_.preds(i)) {
            if (e.virtual_ctrl)
                continue;  // priority-only: speculation may break it
            const auto [pc, ps] = position(e.other);
            if (e.latency > 0) {
                if (cycle < pc + e.latency)
                    return false;
            } else if (e.slot_ordered) {
                if (pc > cycle || (pc == cycle && ps >= slot))
                    return false;
            } else {
                if (cycle < pc)
                    return false;
            }
        }
        return true;
    }

    /**
     * Find a scheduled twin for dominator-parallelism elision: same
     * duplication group, same opcode/compare, identical (renamed)
     * sources, unguarded computation, and a position that also
     * satisfies @p i's memory-ordering edges. Only the op's own
     * duplication group is scanned (in lowering order, matching the
     * historical full scan, which skipped every other op anyway).
     *
     * @return twin index, or npos
     */
    uint32_t
    findTwin(uint32_t i) const
    {
        const LoweredOp &lop = lowered_.ops[i];
        for (uint32_t m = group_lo_[i]; m < group_hi_[i]; ++m) {
            const uint32_t j = group_members_[m];
            // Elided nodes are skipped: their destination register is
            // never actually written, so aliasing to it would read
            // garbage. The surviving representative qualifies on its
            // own (same duplication group and sources).
            if (j == i || !scheduled_[j] || elided_[j])
                continue;
            const LoweredOp &twin = lowered_.ops[j];
            if (!twin_ok_[j] || twin.op.opcode != lop.op.opcode ||
                twin.op.cmp != lop.op.cmp ||
                twin.op.srcs != lop.op.srcs) {
                continue;
            }
            // The twin's position must satisfy this op's memory
            // ordering edges (the value edges are identical by source
            // equality).
            const auto [tc, ts] = position(j);
            bool order_ok = true;
            for (const DdgEdge &e : ddg_.preds(i)) {
                if (e.latency == 0 && e.slot_ordered) {
                    const auto [pc, ps] = position(e.other);
                    if (!scheduled_[e.other] || pc > tc ||
                        (pc == tc && ps >= ts)) {
                        order_ok = false;
                        break;
                    }
                }
            }
            if (order_ok)
                return j;
        }
        return npos;
    }

    /** Alias @p i's destination to its twin's in all pending readers. */
    void
    elide(uint32_t i, uint32_t twin)
    {
        const ir::Reg from = lowered_.ops[i].op.dsts[0];
        const ir::Reg to = lowered_.ops[twin].op.dsts[0];
        for (size_t k = 0; k < n_; ++k) {
            if (!scheduled_[k])
                lowered_.ops[k].op.renameUses(from, to);
        }
        for (LoweredExit &exit : lowered_.exits) {
            for (ExitCopy &copy : exit.copies) {
                if (copy.src == from)
                    copy.src = to;
            }
        }
        scheduled_[i] = 1;
        elided_[i] = 1;
        rep_[i] = twin;
        support::remark(support::RemarkKind::Elided)
            .block(lowered_.ops[i].home)
            .op(lowered_.ops[i].op.id)
            .arg("twin", lowered_.ops[twin].op.id)
            .arg("root", lowered_.root);
    }

    /**
     * Node @p i just became pred-complete: cache its earliest legal
     * cycle (slot-ordered edges still need the per-slot scan) and
     * enter it into the candidate pool.
     */
    void
    onPredComplete(uint32_t i)
    {
        int mc = 0;
        bool has_slot = false;
        for (const DdgEdge &e : ddg_.preds(i)) {
            if (e.virtual_ctrl)
                continue;
            const auto [pc, ps] = position(e.other);
            (void)ps;
            mc = std::max(mc, e.latency > 0 ? pc + e.latency : pc);
            has_slot = has_slot || e.slot_ordered;
        }
        min_cycle_[i] = mc;
        has_slot_pred_[i] = has_slot;
        const uint32_t r = rank_of_[i];
        cand_[r >> 6] |= 1ull << (r & 63);
    }

    /** Mark @p i placed and release its successors. */
    void
    retire(uint32_t i)
    {
        const uint32_t r = rank_of_[i];
        cand_[r >> 6] &= ~(1ull << (r & 63));
        for (const DdgEdge &e : ddg_.succs(i)) {
            if (e.virtual_ctrl)
                continue;
            if (--pending_[e.other] == 0)
                onPredComplete(e.other);
        }
    }

    /**
     * Report priority ties: adjacent pairs of the sorted order whose
     * keys are equal under @p heuristic, i.e. decided only by the
     * deterministic lowering-order fallback.
     */
    void
    reportTieBreaks(const uint32_t *order, const PriorityKeys *keys,
                    Heuristic heuristic) const
    {
        auto tied = [&](const PriorityKeys &a, const PriorityKeys &b) {
            switch (heuristic) {
              case Heuristic::DependenceHeight:
                return a.height == b.height;
              case Heuristic::ExitCount:
                return a.exit_count == b.exit_count &&
                       a.height == b.height;
              case Heuristic::GlobalWeight:
                return a.weight == b.weight && a.height == b.height;
              case Heuristic::WeightedCount:
                return a.weight == b.weight &&
                       a.exit_count == b.exit_count &&
                       a.height == b.height;
            }
            return false;
        };
        for (size_t k = 0; k + 1 < n_; ++k) {
            const uint32_t w = order[k], l = order[k + 1];
            if (!tied(keys[w], keys[l]))
                continue;
            support::remark(support::RemarkKind::TieBreak)
                .block(lowered_.ops[w].home)
                .op(lowered_.ops[w].op.id)
                .arg("loser", lowered_.ops[l].op.id)
                .arg("height", keys[w].height)
                .arg("exits", keys[w].exit_count)
                .arg("weight", keys[w].weight)
                .arg("loser_height", keys[l].height)
                .arg("loser_exits", keys[l].exit_count)
                .arg("loser_weight", keys[l].weight);
        }
    }

    ir::Function &fn_;
    LoweredRegion lowered_;
    Arena &arena_;
    RegionIndex index_;
    Ddg ddg_;
    MachineModel model_;
    SchedOptions options_;

    // Structure-of-arrays scheduling state, all arena-backed and
    // indexed by lowered op id.
    size_t n_ = 0;
    uint8_t *scheduled_ = nullptr;
    uint8_t *elided_ = nullptr;
    int32_t *cycle_ = nullptr;
    int32_t *slot_ = nullptr;
    uint32_t *rep_ = nullptr;
    int32_t *pending_ = nullptr;     ///< unscheduled real preds
    int32_t *min_cycle_ = nullptr;   ///< earliest cycle once complete
    uint8_t *has_slot_pred_ = nullptr;
    uint8_t *twin_ok_ = nullptr;     ///< may serve as an elision twin
    uint8_t *elig_ = nullptr;        ///< may be elided itself
    uint32_t *order_ = nullptr;      ///< rank -> op (exits first)
    uint32_t *rank_of_ = nullptr;    ///< op -> rank
    uint64_t *cand_ = nullptr;       ///< candidate bitset over ranks
    size_t cand_words_ = 0;
    uint32_t *group_members_ = nullptr;  ///< dupGroup buckets
    uint32_t *group_lo_ = nullptr;   ///< op -> its bucket range
    uint32_t *group_hi_ = nullptr;
    size_t elided_count_ = 0;
};

void
Scheduler::place()
{
    const size_t n = lowered_.ops.size();
    n_ = n;
    const PriorityKeys *keys =
        computePriorityKeys(fn_, lowered_, index_, ddg_, arena_);
    uint32_t *order =
        sortByPriority(keys, n, options_.heuristic, arena_);
    if (support::remarksEnabled())
        reportTieBreaks(order, keys, options_.heuristic);

    // Retire-as-soon-as-possible rule: a ready exit branch fires at
    // its earliest legal cycle (its dependences - predicate, pinned
    // stores, live-out producers - already encode when the exit may
    // be taken), so exits precede computation in the pick order. The
    // heuristic still decides everything that matters: the order of
    // computation determines when each path's producers are done and
    // hence when its exit becomes ready. (Stable partition, done by
    // hand to stay inside the arena.)
    order_ = arena_.allocArray<uint32_t>(n);
    {
        size_t at = 0;
        for (size_t k = 0; k < n; ++k) {
            if (lowered_.ops[order[k]].kind == LoweredKind::ExitBranch)
                order_[at++] = order[k];
        }
        for (size_t k = 0; k < n; ++k) {
            if (lowered_.ops[order[k]].kind != LoweredKind::ExitBranch)
                order_[at++] = order[k];
        }
    }
    rank_of_ = arena_.allocArray<uint32_t>(n);
    for (size_t r = 0; r < n; ++r)
        rank_of_[order_[r]] = static_cast<uint32_t>(r);

    scheduled_ = arena_.allocZeroed<uint8_t>(n);
    elided_ = arena_.allocZeroed<uint8_t>(n);
    cycle_ = arena_.allocFilled<int32_t>(n, -1);
    slot_ = arena_.allocFilled<int32_t>(n, -1);
    rep_ = arena_.allocZeroed<uint32_t>(n);
    pending_ = arena_.allocZeroed<int32_t>(n);
    min_cycle_ = arena_.allocZeroed<int32_t>(n);
    has_slot_pred_ = arena_.allocZeroed<uint8_t>(n);
    cand_words_ = (n + 63) / 64;
    cand_ = arena_.allocZeroed<uint64_t>(cand_words_);

    // Dominator-parallelism support tables: per-dupGroup member
    // buckets (ascending op index) and static eligibility flags.
    elig_ = arena_.allocZeroed<uint8_t>(n);
    twin_ok_ = arena_.allocZeroed<uint8_t>(n);
    group_lo_ = arena_.allocZeroed<uint32_t>(n);
    group_hi_ = arena_.allocZeroed<uint32_t>(n);
    {
        size_t grouped = 0;
        for (size_t i = 0; i < n; ++i) {
            if (lowered_.ops[i].op.dupGroup != 0)
                ++grouped;
        }
        uint64_t *pairs = arena_.allocArray<uint64_t>(grouped);
        size_t at = 0;
        for (size_t i = 0; i < n; ++i) {
            const LoweredOp &lop = lowered_.ops[i];
            if (lop.op.dupGroup == 0)
                continue;
            pairs[at++] = (static_cast<uint64_t>(lop.op.dupGroup)
                           << 32) |
                          i;
            elig_[i] = lop.kind == LoweredKind::Computation &&
                       !lop.pinned && !lop.op.guard &&
                       lop.op.dsts.size() == 1;
            twin_ok_[i] =
                !lop.op.guard && lop.op.dsts.size() == 1;
        }
        std::sort(pairs, pairs + grouped);
        group_members_ = arena_.allocArray<uint32_t>(grouped);
        for (size_t m = 0; m < grouped; ++m)
            group_members_[m] = static_cast<uint32_t>(pairs[m]);
        size_t lo = 0;
        while (lo < grouped) {
            size_t hi = lo + 1;
            while (hi < grouped &&
                   (pairs[hi] >> 32) == (pairs[lo] >> 32))
                ++hi;
            for (size_t m = lo; m < hi; ++m) {
                group_lo_[group_members_[m]] =
                    static_cast<uint32_t>(lo);
                group_hi_[group_members_[m]] =
                    static_cast<uint32_t>(hi);
            }
            lo = hi;
        }
    }

    // Pending-predecessor counts over real (non-virtual) edges; the
    // pred/succ lists are symmetrically deduped, so decrements match.
    for (size_t i = 0; i < n; ++i) {
        int32_t count = 0;
        for (const DdgEdge &e : ddg_.preds(i)) {
            if (!e.virtual_ctrl)
                ++count;
        }
        pending_[i] = count;
    }
    for (size_t i = 0; i < n; ++i) {
        if (pending_[i] == 0)
            onPredComplete(static_cast<uint32_t>(i));
    }

    size_t scheduled_count = 0;
    int cycle = 0;
    const int max_cycles =
        static_cast<int>(n) * 16 + 1024;  // runaway guard

    while (scheduled_count < n) {
        TG_ASSERT(cycle < max_cycles);
        int slots_used = 0;
        bool progress = true;
        while (progress) {
            progress = false;
            // Candidates in priority-rank order. A node released at a
            // HIGHER rank mid-scan is picked up later in this same
            // pass (the word is re-read after every action); one
            // released at a lower rank waits for the next pass —
            // exactly the classic whole-order rescan semantics.
            for (size_t w = 0; w < cand_words_; ++w) {
                uint64_t bits = cand_[w];
                while (bits) {
                    const int b = __builtin_ctzll(bits);
                    const uint32_t i =
                        order_[(w << 6) + static_cast<size_t>(b)];
                    bool acted = false;
                    if (ready(i, cycle, slots_used)) {
                        // Elision consumes no slot, so try it even
                        // with all slots filled.
                        if (options_.dominator_parallelism &&
                            elig_[i]) {
                            const uint32_t twin = findTwin(i);
                            if (twin != npos) {
                                elide(i, twin);
                                ++elided_count_;
                                acted = true;
                            }
                        }
                        if (!acted && slots_used < model_.issue_width) {
                            scheduled_[i] = 1;
                            cycle_[i] = cycle;
                            slot_[i] = slots_used;
                            ++slots_used;
                            acted = true;
                        }
                    }
                    if (acted) {
                        retire(i);
                        ++scheduled_count;
                        progress = true;
                    }
                    bits = cand_[w] &
                           (b == 63 ? 0 : (~0ull << (b + 1)));
                }
            }
        }
        ++cycle;
    }
}

RegionSchedule
Scheduler::assemble()
{
    const size_t n = n_;
    RegionSchedule sched;
    sched.root = lowered_.root;
    sched.succs_in_region = std::move(lowered_.succs_in_region);
    sched.stats.renamed_defs = lowered_.renamed_defs;
    sched.stats.elided_ops = elided_count_;

    // Surviving ops sorted by (cycle, slot).
    std::vector<size_t> emit_order;
    emit_order.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (!elided_[i])
            emit_order.push_back(i);
    }
    std::sort(emit_order.begin(), emit_order.end(),
              [&](size_t a, size_t b) {
                  return std::make_pair(cycle_[a], slot_[a]) <
                         std::make_pair(cycle_[b], slot_[b]);
              });

    std::vector<size_t> lowered_to_out(n, SIZE_MAX);
    sched.ops.reserve(emit_order.size());
    for (const size_t i : emit_order) {
        ScheduledOp sop;
        sop.op = std::move(lowered_.ops[i].op);
        sop.cycle = cycle_[i];
        sop.slot = slot_[i];
        sop.home = lowered_.ops[i].home;
        sop.speculative = lowered_.ops[i].kind ==
                              LoweredKind::Computation &&
                          !sop.op.guard && sop.home != lowered_.root;
        if (sop.speculative) {
            ++sched.stats.speculated_ops;
            support::remark(support::RemarkKind::Speculated)
                .block(sop.home)
                .op(sop.op.id)
                .arg("root", lowered_.root)
                .arg("cycle", sop.cycle)
                .arg("slot", sop.slot);
        }
        lowered_to_out[i] = sched.ops.size();
        sched.ops.push_back(std::move(sop));
        sched.length = std::max(sched.length, cycle_[i] + 1);
    }

    for (LoweredExit &exit : lowered_.exits) {
        ScheduledExit se;
        TG_ASSERT(lowered_to_out[exit.op_index] != SIZE_MAX);
        se.op_index = lowered_to_out[exit.op_index];
        se.target_slot = exit.target_slot;
        se.from = exit.from;
        se.target = exit.target;
        se.is_ret = exit.is_ret;
        se.weight = exit.weight;
        se.cycle = cycle_[exit.op_index];
        sched.stats.exit_copies += exit.copies.size();
        se.copies = std::move(exit.copies);
        sched.exits.push_back(std::move(se));
    }
    if (support::remarksEnabled()) {
        // Distinct exit branch ops sharing a cycle: the predicated
        // branches the paper merges into one MultiOp.
        std::map<int, std::set<size_t>> branches_at;
        for (const LoweredExit &exit : lowered_.exits)
            branches_at[cycle_[exit.op_index]].insert(exit.op_index);
        for (const auto &[exit_cycle, branches] : branches_at) {
            if (branches.size() > 1) {
                support::remark(support::RemarkKind::ExitMerged)
                    .block(lowered_.root)
                    .arg("cycle", exit_cycle)
                    .arg("branches", branches.size());
            }
        }
    }
    return sched;
}

} // namespace

RegionSchedule
scheduleLoweredRegion(ir::Function &fn, LoweredRegion lowered,
                      const MachineModel &model,
                      const SchedOptions &options)
{
    Arena &arena = schedArena();
    arena.reset();
    // Timing DDG construction and the placement separately gives the
    // per-stage split the tracing layer reports (ddg_build vs
    // list_sched). The Scheduler itself is arena-backed but the
    // object is tiny; placement-new it into the arena too so the job
    // performs no heap traffic at all.
    Scheduler *scheduler;
    {
        support::TraceScope span("ddg_build", "sched");
        void *raw = arena.allocate(sizeof(Scheduler),
                                   alignof(Scheduler));
        scheduler = new (raw)
            Scheduler(fn, std::move(lowered), model, options, arena);
    }
    RegionSchedule sched = [&] {
        support::TraceScope span("list_sched", "sched");
        scheduler->place();
        return scheduler->assemble();
    }();
    scheduler->~Scheduler();
    g_arena_jobs.fetch_add(1, std::memory_order_relaxed);
    raiseMax(g_arena_high_water, arena.highWater());
    raiseMax(g_arena_capacity, arena.capacity());
    return sched;
}

int
runPlacementProbe(ir::Function &fn, LoweredRegion lowered,
                  const MachineModel &model, const SchedOptions &options)
{
    Arena &arena = schedArena();
    arena.reset();
    void *raw = arena.allocate(sizeof(Scheduler), alignof(Scheduler));
    Scheduler *scheduler = new (raw)
        Scheduler(fn, std::move(lowered), model, options, arena);
    scheduler->place();
    const int length = scheduler->placedLength();
    scheduler->~Scheduler();
    g_arena_jobs.fetch_add(1, std::memory_order_relaxed);
    raiseMax(g_arena_high_water, arena.highWater());
    raiseMax(g_arena_capacity, arena.capacity());
    return length;
}

void
reportArenaMetrics(support::MetricsRegistry &metrics)
{
    metrics.set("sched.arena.jobs",
                g_arena_jobs.load(std::memory_order_relaxed));
    metrics.set("sched.arena.high_water_bytes",
                g_arena_high_water.load(std::memory_order_relaxed));
    metrics.set("sched.arena.capacity_bytes",
                g_arena_capacity.load(std::memory_order_relaxed));
}

uint64_t
schedArenaHighWaterBytes()
{
    return schedArena().highWater();
}

void
schedArenaTrim()
{
    schedArena().trim();
}

RegionSchedule
scheduleRegion(ir::Function &fn, const region::Region &r,
               const analysis::Liveness &live, const MachineModel &model,
               const SchedOptions &options)
{
    if (r.kind() == region::RegionKind::Hyperblock) {
        LoweredRegion lowered = [&] {
            support::TraceScope span("lower", "sched");
            return lowerHyperblock(fn, r, live);
        }();
        return scheduleLoweredRegion(fn, std::move(lowered), model,
                                     options);
    }
    LowerOptions lower_options;
    lower_options.materialize_pbr = options.materialize_pbr;
    LoweredRegion lowered = [&] {
        support::TraceScope span("lower", "sched");
        return lowerRegion(fn, r, live, lower_options);
    }();
    return scheduleLoweredRegion(fn, std::move(lowered), model, options);
}

} // namespace treegion::sched
