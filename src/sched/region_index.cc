#include "sched/region_index.h"

#include "support/logging.h"

namespace treegion::sched {

using ir::BlockId;

RegionIndex::RegionIndex(const LoweredRegion &lowered,
                         support::Arena &arena)
    : arena_(&arena)
{
    // Member blocks: succs_in_region keys and values, op homes, exit
    // sources. (Both lowerings key every member block, but belt and
    // braces costs nothing here.)
    BlockId max_id = lowered.root;
    auto raise = [&max_id](BlockId id) {
        if (id != ir::kNoBlock && id > max_id)
            max_id = id;
    };
    for (const auto &[block, succs] : lowered.succs_in_region) {
        raise(block);
        for (const BlockId succ : succs)
            raise(succ);
    }
    for (const LoweredOp &op : lowered.ops)
        raise(op.home);
    for (const LoweredExit &exit : lowered.exits)
        raise(exit.from);

    map_size_ = static_cast<size_t>(max_id) + 1;
    block_index_ = arena.allocFilled<uint32_t>(map_size_, kInvalid);

    uint8_t *member = arena.allocZeroed<uint8_t>(map_size_);
    member[lowered.root] = 1;
    for (const auto &[block, succs] : lowered.succs_in_region) {
        member[block] = 1;
        for (const BlockId succ : succs)
            member[succ] = 1;
    }
    for (const LoweredOp &op : lowered.ops)
        member[op.home] = 1;
    for (const LoweredExit &exit : lowered.exits)
        member[exit.from] = 1;

    // Dense indices in ascending BlockId order: deterministic and
    // independent of hash-map iteration order.
    for (size_t id = 0; id < map_size_; ++id) {
        if (member[id])
            block_index_[id] = static_cast<uint32_t>(num_blocks_++);
    }
    blocks_ = arena.allocArray<BlockId>(num_blocks_);
    for (size_t id = 0; id < map_size_; ++id) {
        if (member[id])
            blocks_[block_index_[id]] = static_cast<BlockId>(id);
    }

    // Successor CSR (each list keeps its lowering order).
    succ_off_ = arena.allocZeroed<uint32_t>(num_blocks_ + 1);
    for (const auto &[block, succs] : lowered.succs_in_region)
        succ_off_[indexOf(block) + 1] +=
            static_cast<uint32_t>(succs.size());
    for (size_t bi = 0; bi < num_blocks_; ++bi)
        succ_off_[bi + 1] += succ_off_[bi];
    succ_list_ = arena.allocArray<uint32_t>(succ_off_[num_blocks_]);
    {
        uint32_t *fill = arena.allocArray<uint32_t>(num_blocks_);
        for (size_t bi = 0; bi < num_blocks_; ++bi)
            fill[bi] = succ_off_[bi];
        for (const auto &[block, succs] : lowered.succs_in_region) {
            const uint32_t bi = indexOf(block);
            for (const BlockId succ : succs)
                succ_list_[fill[bi]++] = indexOf(succ);
        }
    }

    // Homed-op CSR, ascending op index per block.
    op_off_ = arena.allocZeroed<uint32_t>(num_blocks_ + 1);
    for (const LoweredOp &op : lowered.ops)
        ++op_off_[indexOf(op.home) + 1];
    for (size_t bi = 0; bi < num_blocks_; ++bi)
        op_off_[bi + 1] += op_off_[bi];
    op_list_ = arena.allocArray<uint32_t>(op_off_[num_blocks_]);
    {
        uint32_t *fill = arena.allocArray<uint32_t>(num_blocks_);
        for (size_t bi = 0; bi < num_blocks_; ++bi)
            fill[bi] = op_off_[bi];
        for (size_t i = 0; i < lowered.ops.size(); ++i)
            op_list_[fill[indexOf(lowered.ops[i].home)]++] =
                static_cast<uint32_t>(i);
    }

    // Exit CSR, ascending exit index per block.
    exit_off_ = arena.allocZeroed<uint32_t>(num_blocks_ + 1);
    for (const LoweredExit &exit : lowered.exits)
        ++exit_off_[indexOf(exit.from) + 1];
    for (size_t bi = 0; bi < num_blocks_; ++bi)
        exit_off_[bi + 1] += exit_off_[bi];
    exit_list_ = arena.allocArray<uint32_t>(exit_off_[num_blocks_]);
    {
        uint32_t *fill = arena.allocArray<uint32_t>(num_blocks_);
        for (size_t bi = 0; bi < num_blocks_; ++bi)
            fill[bi] = exit_off_[bi];
        for (size_t e = 0; e < lowered.exits.size(); ++e)
            exit_list_[fill[indexOf(lowered.exits[e].from)]++] =
                static_cast<uint32_t>(e);
    }
}

void
RegionIndex::reachableFrom(uint32_t bi,
                           support::ArenaVector<uint32_t> &out) const
{
    // Mirrors LoweredRegion::reachableFrom exactly: explicit stack,
    // successors pushed in list order, visited check at pop. Output
    // order must match byte for byte (DDG virtual-edge emission and
    // exit counting both derive from it).
    uint8_t *seen = arena_->allocZeroed<uint8_t>(num_blocks_);
    support::ArenaVector<uint32_t> stack(*arena_);
    stack.push_back(bi);
    while (!stack.empty()) {
        const uint32_t cur = stack.back();
        stack.pop_back();
        if (seen[cur])
            continue;
        seen[cur] = 1;
        out.push_back(cur);
        for (const uint32_t succ : succs(cur))
            stack.push_back(succ);
    }
}

} // namespace treegion::sched
