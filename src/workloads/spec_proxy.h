/**
 * @file
 * SPECint95 proxy workloads.
 *
 * The paper evaluates on SPECint95 binaries compiled through
 * IMPACT/Elcor, which we cannot run; each proxy is a synthetic
 * program whose generator parameters are tuned to reproduce the
 * benchmark's CFG character as the paper describes it:
 *
 *  - compress: small, loopy, moderately biased branches.
 *  - gcc: large, switch-heavy (wide multiway branches with many
 *    zero-weight destinations rooting wide, shallow treegions).
 *  - go: large, branchy if/else code.
 *  - ijpeg: heavily biased treegions (a single path executes ~100%
 *    of the time) inside loops.
 *  - li: small functions, modest switches, interpreter-style mix.
 *  - m88ksim: moderate branching with larger basic blocks.
 *  - perl: very wide switches plus branchy glue.
 *  - vortex: large blocks and early-exit ladders (linearized regions
 *    whose most frequent exit is the bottom one).
 */

#ifndef TREEGION_WORKLOADS_SPEC_PROXY_H
#define TREEGION_WORKLOADS_SPEC_PROXY_H

#include <vector>

#include "workloads/synthetic.h"

namespace treegion::workloads {

/** A named proxy benchmark. */
struct ProxySpec
{
    std::string name;
    GenParams params;
};

/** The eight SPECint95 proxies, in the paper's table order. */
std::vector<ProxySpec> specint95Proxies();

/** Generate the program for @p spec. */
std::unique_ptr<ir::Module> buildProxy(const ProxySpec &spec);

} // namespace treegion::workloads

#endif // TREEGION_WORKLOADS_SPEC_PROXY_H
