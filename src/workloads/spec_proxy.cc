#include "workloads/spec_proxy.h"

namespace treegion::workloads {

std::vector<ProxySpec>
specint95Proxies()
{
    std::vector<ProxySpec> proxies;

    {
        // compress: small and loopy, tight kernels, few switches.
        GenParams p;
        p.seed = 0xC0301;
        p.top_units = 10;
        p.max_depth = 2;
        p.p_straight = 0.15;
        p.p_if = 0.28;
        p.p_ifelse = 0.22;
        p.p_switch = 0.00;
        p.p_ladder = 0.03;
        p.p_loop = 0.32;
        p.nest_prob = 0.35;
        p.block_ops_min = 4;
        p.block_ops_max = 9;
        p.bias = 0.75;
        proxies.push_back({"compress", p});
    }
    {
        // gcc: big and branchy with occasional very wide multiway
        // branches, most of whose destinations never execute.
        GenParams p;
        p.seed = 0x6CC02;
        p.top_units = 44;
        p.max_depth = 3;
        p.p_straight = 0.12;
        p.p_if = 0.24;
        p.p_ifelse = 0.26;
        p.p_switch = 0.05;
        p.p_ladder = 0.05;
        p.p_loop = 0.28;
        p.switch_width_min = 10;
        p.switch_width_max = 24;
        p.switch_arm_nest_prob = 0.12;
        p.switch_arm_ops_min = 1;
        p.switch_arm_ops_max = 3;
        p.nest_prob = 0.35;
        p.block_ops_min = 3;
        p.block_ops_max = 8;
        p.bias = 0.62;
        proxies.push_back({"gcc", p});
    }
    {
        // go: branchy if/else evaluation code, few switches.
        GenParams p;
        p.seed = 0x60003;
        p.top_units = 34;
        p.max_depth = 3;
        p.p_straight = 0.12;
        p.p_if = 0.28;
        p.p_ifelse = 0.28;
        p.p_switch = 0.02;
        p.p_ladder = 0.04;
        p.p_loop = 0.26;
        p.switch_width_min = 6;
        p.switch_width_max = 12;
        p.nest_prob = 0.35;
        p.block_ops_min = 3;
        p.block_ops_max = 8;
        p.bias = 0.58;
        proxies.push_back({"go", p});
    }
    {
        // ijpeg: loops around heavily biased branches - treegions
        // where one path executes essentially always.
        GenParams p;
        p.seed = 0x19E604;
        p.top_units = 14;
        p.max_depth = 2;
        p.p_straight = 0.12;
        p.p_if = 0.26;
        p.p_ifelse = 0.24;
        p.p_switch = 0.00;
        p.p_ladder = 0.02;
        p.p_loop = 0.36;
        p.nest_prob = 0.35;
        p.block_ops_min = 4;
        p.block_ops_max = 9;
        p.bias = 0.985;
        proxies.push_back({"ijpeg", p});
    }
    {
        // li: interpreter-style dispatch with modest switches.
        GenParams p;
        p.seed = 0x11905;
        p.top_units = 18;
        p.max_depth = 2;
        p.p_straight = 0.14;
        p.p_if = 0.24;
        p.p_ifelse = 0.24;
        p.p_switch = 0.06;
        p.p_ladder = 0.06;
        p.p_loop = 0.26;
        p.switch_width_min = 4;
        p.switch_width_max = 8;
        p.switch_arm_ops_min = 1;
        p.switch_arm_ops_max = 3;
        p.nest_prob = 0.35;
        p.block_ops_min = 3;
        p.block_ops_max = 7;
        p.bias = 0.68;
        proxies.push_back({"li", p});
    }
    {
        // m88ksim: moderate branching with larger basic blocks and
        // deeper nesting (its treegions are the biggest on average).
        GenParams p;
        p.seed = 0x88806;
        p.top_units = 18;
        p.max_depth = 3;
        p.p_straight = 0.14;
        p.p_if = 0.22;
        p.p_ifelse = 0.30;
        p.p_switch = 0.03;
        p.p_ladder = 0.05;
        p.p_loop = 0.26;
        p.switch_width_min = 6;
        p.switch_width_max = 14;
        p.switch_arm_ops_min = 1;
        p.switch_arm_ops_max = 3;
        p.nest_prob = 0.45;
        p.block_ops_min = 5;
        p.block_ops_max = 11;
        p.bias = 0.72;
        proxies.push_back({"m88ksim", p});
    }
    {
        // perl: mostly branchy glue with rare but extremely wide
        // dispatch switches.
        GenParams p;
        p.seed = 0x9E2107;
        p.top_units = 40;
        p.max_depth = 3;
        p.p_straight = 0.12;
        p.p_if = 0.24;
        p.p_ifelse = 0.26;
        p.p_switch = 0.06;
        p.p_ladder = 0.04;
        p.p_loop = 0.28;
        p.switch_width_min = 12;
        p.switch_width_max = 32;
        p.switch_arm_nest_prob = 0.10;
        p.switch_arm_ops_min = 1;
        p.switch_arm_ops_max = 3;
        p.nest_prob = 0.35;
        p.block_ops_min = 3;
        p.block_ops_max = 8;
        p.bias = 0.60;
        proxies.push_back({"perl", p});
    }
    {
        // vortex: large blocks and early-exit ladders (validation
        // chains) - linearized regions with equal block weights.
        GenParams p;
        p.seed = 0x50208;
        p.top_units = 22;
        p.max_depth = 2;
        p.p_straight = 0.22;
        p.p_if = 0.18;
        p.p_ifelse = 0.14;
        p.p_switch = 0.02;
        p.p_ladder = 0.18;
        p.p_loop = 0.26;
        p.switch_width_min = 4;
        p.switch_width_max = 8;
        p.ladder_len_min = 3;
        p.ladder_len_max = 5;
        p.ladder_break = 0.05;
        p.ladder_dead_prob = 0.7;
        p.nest_prob = 0.35;
        p.block_ops_min = 6;
        p.block_ops_max = 13;
        p.bias = 0.70;
        proxies.push_back({"vortex", p});
    }
    return proxies;
}

std::unique_ptr<ir::Module>
buildProxy(const ProxySpec &spec)
{
    return generateProgram(spec.name, spec.params);
}

} // namespace treegion::workloads
