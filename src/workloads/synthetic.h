/**
 * @file
 * Synthetic structured-program generator.
 *
 * Programs are built from nestable structures — straight-line code,
 * if-then, if-then-else, switch (MWBR), early-exit ladders, and
 * counted loops — with every branch condition computed from loaded
 * data, so different input memory images exercise different paths
 * and the profiler sees genuinely input-dependent behaviour.
 *
 * Data layout: the top kReservedWords of memory hold loop counters
 * and the accumulator cell; the rest is input data. Loop counters
 * live in memory (stored/reloaded each iteration) because the IR has
 * no phi nodes; conditions load fresh data cells so path choices are
 * reproducible functions of the input image.
 *
 * The structure mix, sizes and branch bias are the dials the
 * SPECint95 proxies (spec_proxy.h) turn to mimic each benchmark's
 * CFG character.
 */

#ifndef TREEGION_WORKLOADS_SYNTHETIC_H
#define TREEGION_WORKLOADS_SYNTHETIC_H

#include <memory>
#include <string>

#include "ir/module.h"

namespace treegion::workloads {

/** Memory words reserved for counters and the accumulator. */
inline constexpr size_t kReservedWords = 256;

/** Generator parameters. */
struct GenParams
{
    uint64_t seed = 1;        ///< structure randomness
    size_t mem_words = 4096;  ///< simulated memory size

    int top_units = 12;   ///< structures in the top-level sequence
    int max_depth = 3;    ///< structure nesting depth
    size_t max_blocks = 4000;  ///< soft cap on CFG size

    // Structure mix (relative weights, not required to sum to 1).
    double p_straight = 0.15;
    double p_if = 0.20;
    double p_ifelse = 0.25;
    double p_switch = 0.10;
    double p_ladder = 0.10;
    double p_loop = 0.20;

    int switch_width_min = 4;   ///< MWBR arm count range
    int switch_width_max = 8;
    int ladder_len_min = 3;     ///< early-exit ladder length range
    int ladder_len_max = 6;
    int loop_trip_min = 2;      ///< counted-loop trip range
    int loop_trip_max = 10;

    int block_ops_min = 3;  ///< computation ops per block
    int block_ops_max = 8;

    /** Probability an arm or loop body nests another structure. */
    double nest_prob = 0.6;

    /** Probability a switch arm nests (kept separate: the paper's
     * wide treegions are shallow). */
    double switch_arm_nest_prob = 0.3;

    /** Switch arms are typically small dispatch stubs. */
    int switch_arm_ops_min = 2;
    int switch_arm_ops_max = 5;

    /**
     * Probability a computation op consumes the most recent result,
     * forming dependence chains. Real integer code has limited
     * intra-block ILP (chains plus load-use delays); this is what
     * leaves issue slots idle for the scheduler to fill with
     * speculated ops.
     */
    double chain_frac = 0.9;

    /**
     * Probability the "hot" side of a two-way branch is taken when
     * data is uniform in [0, data_max). 0.5 = balanced; 0.98 mimics
     * ijpeg's biased treegions.
     */
    double bias = 0.65;

    /**
     * Probability a ladder rung fails (takes the early exit). Low
     * values give vortex-style linearized regions whose most-taken
     * exit is at the bottom.
     */
    double ladder_break = 0.08;

    /**
     * Probability a ladder is a pure validation chain whose
     * intermediate exits are never taken (the paper's Fig. 10: every
     * block carries the same profile weight and only the bottom exit
     * fires, which is what exposes the weighted-count flaw).
     */
    double ladder_dead_prob = 0.4;

    double mem_frac = 0.25;    ///< fraction of block ops touching memory
    double store_frac = 0.35;  ///< of memory ops, fraction that store
    double fp_frac = 0.0;      ///< fraction of ALU ops that are FP
                               ///< (SPECint95 proxies use none)

    int data_max = 100;  ///< data cells are uniform in [0, data_max)

    /** Live-value pool size (values live across block boundaries). */
    size_t pool_size = 8;

};

/** Generate a single-function module named @p name. */
std::unique_ptr<ir::Module> generateProgram(const std::string &name,
                                            const GenParams &params);

/**
 * Build an input memory image for a generated program: data cells
 * uniform in [0, data_max), reserved cells zero.
 */
std::vector<int64_t> makeInputMemory(size_t mem_words, uint64_t seed,
                                     int data_max);

} // namespace treegion::workloads

#endif // TREEGION_WORKLOADS_SYNTHETIC_H
