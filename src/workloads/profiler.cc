#include "workloads/profiler.h"

#include "vliw/interpreter.h"

namespace treegion::workloads {

ProfileSummary
profileFunction(ir::Function &fn, size_t mem_words,
                const ProfileOptions &options)
{
    ProfileSummary summary;
    vliw::ExecutionCounts counts;
    for (int run = 0; run < options.runs; ++run) {
        auto memory = makeInputMemory(
            mem_words, options.input_seed * 0x9e3779b9ULL + run,
            options.data_max);
        const vliw::ExecResult result =
            vliw::runSequential(fn, std::move(memory), {}, &counts);
        if (result.completed) {
            ++summary.completed_runs;
            summary.total_ops += result.ops_executed;
        }
    }

    fn.forEachBlockMut([&](ir::BasicBlock &b) {
        auto it = counts.block.find(b.id());
        b.setWeight(it == counts.block.end() ? 0.0 : it->second);
        const size_t n_targets =
            b.hasTerminator() ? b.terminator().targets.size() : 0;
        b.edgeWeights().assign(n_targets, 0.0);
        for (size_t slot = 0; slot < n_targets; ++slot) {
            auto eit = counts.edge.find(
                vliw::ExecutionCounts::edgeKey(b.id(), slot));
            if (eit != counts.edge.end())
                b.edgeWeights()[slot] = eit->second;
        }
    });
    return summary;
}

} // namespace treegion::workloads
