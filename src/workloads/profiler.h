/**
 * @file
 * Training-input profiler.
 *
 * Runs the sequential program on a family of seeded input images and
 * writes the accumulated block/edge execution counts into the
 * function's profile fields - the same mechanism as the paper's
 * training-input profiling runs. A different input seed family gives
 * a "reference input" profile for the profile-variation experiments.
 */

#ifndef TREEGION_WORKLOADS_PROFILER_H
#define TREEGION_WORKLOADS_PROFILER_H

#include "ir/module.h"
#include "workloads/synthetic.h"

namespace treegion::workloads {

/** Profiling configuration. */
struct ProfileOptions
{
    uint64_t input_seed = 42;  ///< input family seed
    int runs = 20;             ///< independent executions
    int data_max = 100;        ///< input data range
};

/** Profiling outcome. */
struct ProfileSummary
{
    int completed_runs = 0;
    uint64_t total_ops = 0;  ///< dynamic sequential ops
};

/**
 * Profile @p fn and install block/edge weights.
 *
 * @param fn the function (weights are overwritten)
 * @param mem_words memory image size
 * @param options input family and run count
 */
ProfileSummary profileFunction(ir::Function &fn, size_t mem_words,
                               const ProfileOptions &options = {});

} // namespace treegion::workloads

#endif // TREEGION_WORKLOADS_PROFILER_H
