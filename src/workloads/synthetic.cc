#include "workloads/synthetic.h"

#include <algorithm>

#include "ir/builder.h"
#include "support/logging.h"
#include "support/rng.h"

namespace treegion::workloads {

using ir::BlockId;
using ir::Builder;
using ir::CmpKind;
using ir::Opcode;
using ir::Operand;
using ir::Reg;
using support::Rng;

namespace {

/** ALU opcodes the body generator draws from. */
const Opcode kIntOps[] = {Opcode::ADD, Opcode::SUB, Opcode::MUL,
                          Opcode::AND, Opcode::OR,  Opcode::XOR,
                          Opcode::SHL, Opcode::SHR};
const Opcode kFpOps[] = {Opcode::FADD, Opcode::FMUL, Opcode::FDIV};

class Generator
{
  public:
    Generator(ir::Module &mod, const GenParams &params)
        : mod_(mod),
          params_(params),
          rng_(params.seed),
          fn_(mod.createFunction("main")),
          builder_(fn_)
    {
        TG_ASSERT(params.mem_words > kReservedWords + 64);
        data_words_ = params.mem_words - kReservedWords;
    }

    void
    run()
    {
        const BlockId entry = builder_.newBlock();
        fn_.setEntry(entry);
        builder_.setInsertPoint(entry);
        base_ = builder_.movi(0);

        // Seed the value pool.
        std::vector<Reg> pool;
        for (int i = 0; i < 4; ++i)
            pool.push_back(loadData(pool));
        for (int i = 0; i < 2; ++i)
            pool.push_back(builder_.movi(rng_.nextRange(1, 64)));

        for (int unit = 0; unit < params_.top_units; ++unit)
            genStructure(params_.max_depth, pool);

        // Fold a result and return it.
        emitBody(pool);
        Operand result = pick(pool);
        builder_.store(base_, accCell(), result);
        const Reg rv = builder_.load(base_, accCell());
        builder_.ret(Builder::R(rv));
    }

  private:
    int64_t accCell() const {
        return static_cast<int64_t>(params_.mem_words - 1);
    }

    int64_t
    counterCell()
    {
        const int64_t cell = static_cast<int64_t>(params_.mem_words) -
                             2 - next_counter_++;
        TG_ASSERT(next_counter_ <
                  static_cast<int>(kReservedWords) - 1);
        return cell;
    }

    int64_t
    dataOffset()
    {
        return static_cast<int64_t>(
            rng_.nextBelow(static_cast<uint64_t>(data_words_)));
    }

    /** Load a fresh data cell (always in [0, data_max)). */
    Reg
    loadData(std::vector<Reg> &)
    {
        return builder_.load(base_, dataOffset());
    }

    /** Pick an operand from the pool (or occasionally an immediate). */
    Operand
    pick(const std::vector<Reg> &pool)
    {
        if (pool.empty() || rng_.nextBool(0.15))
            return Builder::I(rng_.nextRange(1, 31));
        return Builder::R(
            pool[rng_.nextBelow(pool.size())]);
    }

    /**
     * Add @p r to the live-value pool, displacing a random entry once
     * the pool is full. The bounded pool models real integer code,
     * which keeps only a handful of values live across block
     * boundaries (so region-exit reconciliation stays small).
     */
    void
    intoPool(std::vector<Reg> &pool, Reg r)
    {
        if (pool.size() >= params_.pool_size)
            pool[rng_.nextBelow(pool.size())] = r;
        else
            pool.push_back(r);
    }

    /**
     * Emit a body of @p ops computation / memory ops.
     *
     * Ops form dependence chains (the next op usually consumes the
     * previous result), mimicking real code's limited intra-block
     * ILP; and, like real (dead-code-eliminated) compiler output,
     * no chain is left dangling: every chain terminates in a store,
     * the live-value pool, or a later use.
     */
    void
    emitBodyOps(std::vector<Reg> &pool, int ops)
    {
        Reg last{};
        bool have_last = false;
        std::vector<Reg> loose_ends;
        auto first_operand = [&]() -> Operand {
            if (have_last && rng_.nextBool(params_.chain_frac))
                return Builder::R(last);
            // Abandoning the current chain: remember its end so the
            // value is consumed before the block closes.
            if (have_last)
                loose_ends.push_back(last);
            return pick(pool);
        };
        for (int i = 0; i < ops; ++i) {
            if (rng_.nextBool(params_.mem_frac)) {
                if (rng_.nextBool(params_.store_frac)) {
                    builder_.store(base_, dataOffset(), first_operand());
                    have_last = false;
                } else {
                    if (have_last)
                        loose_ends.push_back(last);
                    last = builder_.load(base_, dataOffset());
                    have_last = true;
                }
            } else {
                const Opcode op =
                    rng_.nextBool(params_.fp_frac)
                        ? kFpOps[rng_.nextBelow(3)]
                        : kIntOps[rng_.nextBelow(8)];
                last = builder_.binary(op, first_operand(), pick(pool));
                have_last = true;
            }
        }
        if (have_last)
            loose_ends.push_back(last);
        // Terminate every chain: store the value or keep it live.
        // Storing dominates so that results computed inside branch
        // arms stay observable (pool entries that are never picked
        // again would otherwise be dead code).
        for (const Reg end : loose_ends) {
            if (rng_.nextBool(0.6))
                builder_.store(base_, dataOffset(), Builder::R(end));
            else
                intoPool(pool, end);
        }
    }

    /** Emit a standard-size block body. */
    void
    emitBody(std::vector<Reg> &pool)
    {
        emitBodyOps(pool, static_cast<int>(rng_.nextRange(
                              params_.block_ops_min,
                              params_.block_ops_max)));
    }

    /**
     * Emit a conditional branch taken with probability close to
     * @p p_taken (data cells are uniform in [0, data_max)).
     */
    void
    emitBiasedBranch(std::vector<Reg> &pool, double p_taken,
                     BlockId taken, BlockId fall)
    {
        const Reg x = loadData(pool);
        const int64_t threshold = static_cast<int64_t>(
            p_taken * static_cast<double>(params_.data_max));
        builder_.condBr(CmpKind::LT, Builder::R(x),
                        Builder::I(threshold), taken, fall);
    }

    bool
    blockBudgetLeft() const
    {
        return fn_.numBlockIds() < params_.max_blocks;
    }

    /** A short nested sequence inside an arm or body. */
    void
    genSub(int depth, std::vector<Reg> &pool)
    {
        emitBody(pool);
        if (depth > 0 && blockBudgetLeft() &&
            rng_.nextBool(params_.nest_prob)) {
            genStructure(depth, pool);
        }
    }

    void
    genStructure(int depth, std::vector<Reg> &pool)
    {
        enum { kStraight, kIf, kIfElse, kSwitch, kLadder, kLoop };
        size_t kind = kStraight;
        if (depth > 0 && blockBudgetLeft()) {
            kind = rng_.nextWeighted(
                {params_.p_straight, params_.p_if, params_.p_ifelse,
                 params_.p_switch, params_.p_ladder, params_.p_loop});
        }

        switch (kind) {
          case kStraight:
            emitBody(pool);
            break;

          case kIf: {
            emitBody(pool);
            const BlockId then_b = builder_.newBlock();
            const BlockId join = builder_.newBlock();
            const double p_then =
                rng_.nextBool() ? params_.bias : 1.0 - params_.bias;
            emitBiasedBranch(pool, p_then, then_b, join);

            builder_.setInsertPoint(then_b);
            std::vector<Reg> arm_pool = pool;
            genSub(depth - 1, arm_pool);
            builder_.bru(join);

            builder_.setInsertPoint(join);
            break;
          }

          case kIfElse: {
            emitBody(pool);
            const BlockId then_b = builder_.newBlock();
            const BlockId else_b = builder_.newBlock();
            const BlockId join = builder_.newBlock();
            const double p_then =
                rng_.nextBool() ? params_.bias : 1.0 - params_.bias;
            emitBiasedBranch(pool, p_then, then_b, else_b);

            builder_.setInsertPoint(then_b);
            std::vector<Reg> then_pool = pool;
            genSub(depth - 1, then_pool);
            builder_.bru(join);

            builder_.setInsertPoint(else_b);
            std::vector<Reg> else_pool = pool;
            genSub(depth - 1, else_pool);
            builder_.bru(join);

            builder_.setInsertPoint(join);
            break;
          }

          case kSwitch: {
            emitBody(pool);
            const int width = static_cast<int>(rng_.nextRange(
                params_.switch_width_min, params_.switch_width_max));
            // Restricting the selector to [0, hot) leaves the
            // remaining arms with zero profile weight, the shape the
            // paper observed in gcc's and perl's multiway branches.
            const int hot = static_cast<int>(rng_.nextRange(1, width));
            const Reg x = loadData(pool);
            // Data cells start in [0, data_max), but stores can
            // clobber them with negative computed values, and REM
            // truncates toward zero, so REM alone can yield a
            // negative selector that no MWBR case matches. Shift the
            // remainder into range: x REM hot is in (-hot, hot),
            // plus hot is in (0, 2*hot), REM hot lands in [0, hot).
            // For unclobbered data the selector value is unchanged.
            const Reg narrowed = builder_.binary(
                Opcode::REM, Builder::R(x), Builder::I(hot));
            const Reg shifted = builder_.binary(
                Opcode::ADD, Builder::R(narrowed), Builder::I(hot));
            const Reg sel = builder_.binary(
                Opcode::REM, Builder::R(shifted), Builder::I(hot));

            std::vector<BlockId> arms;
            for (int i = 0; i < width; ++i)
                arms.push_back(builder_.newBlock());
            const BlockId join = builder_.newBlock();
            builder_.mwbr(sel, arms);

            for (const BlockId arm : arms) {
                builder_.setInsertPoint(arm);
                std::vector<Reg> arm_pool = pool;
                // Arms are mostly shallow blocks; some go deeper, so
                // exit counts vary independently of weight.
                if (depth > 0 &&
                    rng_.nextBool(params_.switch_arm_nest_prob) &&
                    blockBudgetLeft()) {
                    genSub(depth - 1, arm_pool);
                } else {
                    emitBodyOps(arm_pool,
                                static_cast<int>(rng_.nextRange(
                                    params_.switch_arm_ops_min,
                                    params_.switch_arm_ops_max)));
                }
                builder_.bru(join);
            }
            builder_.setInsertPoint(join);
            break;
          }

          case kLadder: {
            // Early-exit ladder: each rung usually falls through to
            // the next; the common break target is the join. Produces
            // vortex-style linearized regions whose hottest exit is
            // the bottom one.
            const int len = static_cast<int>(rng_.nextRange(
                params_.ladder_len_min, params_.ladder_len_max));
            const BlockId join = builder_.newBlock();
            // A "dead" ladder never takes its early exits: all rungs
            // then carry identical profile weight (Fig. 10's
            // linearized treegion).
            const double p_break =
                rng_.nextBool(params_.ladder_dead_prob)
                    ? 0.0
                    : params_.ladder_break;
            emitBody(pool);
            for (int i = 0; i < len; ++i) {
                const BlockId next = builder_.newBlock();
                emitBiasedBranch(pool, p_break, join, next);
                builder_.setInsertPoint(next);
                emitBody(pool);
            }
            builder_.bru(join);
            builder_.setInsertPoint(join);
            break;
          }

          case kLoop: {
            // Counted loop with a register induction variable. The
            // IR permits redefinition (it is not SSA), so the latch
            // updates the counter in place like real compiled code.
            const int64_t trips = rng_.nextRange(params_.loop_trip_min,
                                                 params_.loop_trip_max);
            emitBody(pool);
            const Reg counter = builder_.movi(0);
            const BlockId header = builder_.newBlock();
            const BlockId body = builder_.newBlock();
            const BlockId exit_b = builder_.newBlock();
            builder_.bru(header);

            builder_.setInsertPoint(header);
            builder_.condBr(CmpKind::LT, Builder::R(counter),
                            Builder::I(trips), body, exit_b);

            builder_.setInsertPoint(body);
            std::vector<Reg> body_pool = pool;
            genSub(depth - 1, body_pool);
            fn_.appendOp(builder_.insertPoint(),
                         ir::makeBinary(Opcode::ADD, counter,
                                        Builder::R(counter),
                                        Builder::I(1)));
            builder_.bru(header);

            builder_.setInsertPoint(exit_b);
            break;
          }
        }
    }

    ir::Module &mod_;
    const GenParams &params_;
    Rng rng_;
    ir::Function &fn_;
    Builder builder_;
    Reg base_;
    size_t data_words_ = 0;
    int next_counter_ = 0;
};

} // namespace

std::unique_ptr<ir::Module>
generateProgram(const std::string &name, const GenParams &params)
{
    auto mod = std::make_unique<ir::Module>(name);
    mod->setMemWords(params.mem_words);
    Generator gen(*mod, params);
    gen.run();
    return mod;
}

std::vector<int64_t>
makeInputMemory(size_t mem_words, uint64_t seed, int data_max)
{
    TG_ASSERT(mem_words > kReservedWords);
    std::vector<int64_t> memory(mem_words, 0);
    Rng rng(seed);
    for (size_t i = 0; i < mem_words - kReservedWords; ++i)
        memory[i] = rng.nextRange(0, data_max - 1);
    return memory;
}

} // namespace treegion::workloads
