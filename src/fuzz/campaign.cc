#include "fuzz/campaign.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>

#include "fuzz/mutate.h"
#include "ir/printer.h"
#include "support/string_utils.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

namespace treegion::fuzz {

using support::strprintf;

namespace {

constexpr sched::RegionScheme kAllSchemes[] = {
    sched::RegionScheme::BasicBlock,
    sched::RegionScheme::Slr,
    sched::RegionScheme::Superblock,
    sched::RegionScheme::Treegion,
    sched::RegionScheme::TreegionTailDup,
    sched::RegionScheme::Hyperblock,
};

constexpr sched::Heuristic kAllHeuristics[] = {
    sched::Heuristic::DependenceHeight,
    sched::Heuristic::ExitCount,
    sched::Heuristic::GlobalWeight,
    sched::Heuristic::WeightedCount,
};

struct CellFailure
{
    FuzzConfig config;
    OracleFailure fail;
};

} // namespace

std::string
writeRepro(const FoundBug &bug, const std::string &corpus_dir)
{
    std::filesystem::create_directories(corpus_dir);
    const size_t tag = std::hash<std::string>{}(bug.module_text +
                                                bug.config.str() +
                                                bug.oracle);
    const std::string path = strprintf(
        "%s/%s-%08zx.tir", corpus_dir.c_str(), bug.oracle.c_str(),
        tag & 0xffffffff);
    std::ofstream os(path);
    os << makeReproHeader(bug.config, bug.oracle_opts, bug.oracle,
                          bug.detail);
    os << bug.module_text;
    return path;
}

CampaignResult
runCampaign(const CampaignOptions &opts)
{
    support::TraceScope campaign_span("fuzz_campaign", "fuzz");
    CampaignResult result;
    support::Rng rng(opts.seed);
    std::unique_ptr<support::ThreadPool> pool;
    if (opts.jobs != 1)
        pool = std::make_unique<support::ThreadPool>(opts.jobs);

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts.budget_seconds));

    while ((opts.max_programs == 0 ||
            result.programs < opts.max_programs) &&
           std::chrono::steady_clock::now() < deadline) {
        support::TraceScope program_span("fuzz_program", "fuzz");
        const workloads::GenParams params = mutateParams(rng);
        std::unique_ptr<ir::Module> mod =
            workloads::generateProgram("fuzz", params);
        ++result.programs;

        std::vector<CellFailure> failures;

        // Scheme-independent oracle: the textual round trip.
        if (OracleFailure rt = checkRoundTrip(*mod))
            failures.push_back({FuzzConfig{}, std::move(rt)});

        // One cell per scheme x heuristic x width; lowering toggles
        // drawn per cell so the sweep covers both settings over time.
        std::vector<FuzzConfig> cells;
        for (const sched::RegionScheme scheme : kAllSchemes) {
            for (const sched::Heuristic heuristic : kAllHeuristics) {
                for (const int width : opts.widths) {
                    FuzzConfig config;
                    config.scheme = scheme;
                    config.heuristic = heuristic;
                    config.width = width;
                    config.dominator_parallelism = rng.nextBool(0.75);
                    config.materialize_pbr = rng.nextBool(0.25);
                    cells.push_back(config);
                }
            }
        }
        result.cells += cells.size();

        const ir::Function &fn = *mod->functions().front();
        const size_t mem_words = mod->memWords();
        auto runCell = [&fn, mem_words,
                        &oracle = opts.oracle](const FuzzConfig &config) {
            support::TraceScope cell_span("fuzz_cell", "fuzz");
            cell_span.arg("config", config.str());
            return checkCell(fn, mem_words, config, oracle);
        };
        if (pool) {
            std::vector<std::future<OracleFailure>> futures;
            futures.reserve(cells.size());
            for (const FuzzConfig &config : cells)
                futures.push_back(pool->submit(
                    [&runCell, config] { return runCell(config); }));
            for (size_t i = 0; i < cells.size(); ++i) {
                if (OracleFailure fail = futures[i].get())
                    failures.push_back({cells[i], std::move(fail)});
            }
        } else {
            for (const FuzzConfig &config : cells) {
                if (OracleFailure fail = runCell(config))
                    failures.push_back({config, std::move(fail)});
            }
        }

        result.failures += failures.size();
        if (opts.verbose) {
            fprintf(stderr,
                    "[treegion-fuzz] program %zu (gen seed %llx): "
                    "%zu cells, %zu failing\n",
                    result.programs,
                    static_cast<unsigned long long>(params.seed),
                    cells.size(), failures.size());
        }

        // Deduplicate per program by oracle: one minimized repro per
        // failure mode is enough to root-cause it.
        std::vector<std::string> seen;
        for (CellFailure &failure : failures) {
            const std::string &oracle = failure.fail.oracle;
            if (std::find(seen.begin(), seen.end(), oracle) !=
                seen.end())
                continue;
            seen.push_back(oracle);
            if (result.bugs.size() >= opts.max_repros)
                continue;

            fprintf(stderr,
                    "[treegion-fuzz] FAILURE oracle=%s %s\n"
                    "[treegion-fuzz]   %s\n",
                    oracle.c_str(), failure.config.str().c_str(),
                    failure.fail.detail.c_str());

            FoundBug bug;
            bug.config = failure.config;
            bug.oracle_opts = opts.oracle;
            bug.oracle = oracle;
            bug.detail = failure.fail.detail;

            std::unique_ptr<ir::Module> repro = workloads::
                generateProgram("fuzz", params);
            bug.original_ops = repro->functions().front()->totalOps();
            if (opts.reduce) {
                OraclePredicate pred;
                if (oracle == "round-trip") {
                    pred = [](const ir::Module &m) {
                        return checkRoundTrip(m);
                    };
                } else {
                    pred = [config = failure.config,
                            oracle_opts =
                                opts.oracle](const ir::Module &m) {
                        return checkCell(*m.functions().front(),
                                         m.memWords(), config,
                                         oracle_opts);
                    };
                }
                const ReduceResult reduced = reduceModule(
                    *repro, oracle, pred, opts.reduce_opts);
                bug.reduced_ops = reduced.reduced_ops;
                fprintf(stderr,
                        "[treegion-fuzz]   reduced %zu -> %zu ops "
                        "(%zu candidates, %d rounds)\n",
                        reduced.original_ops, reduced.reduced_ops,
                        reduced.candidates, reduced.rounds);
            } else {
                bug.reduced_ops = bug.original_ops;
            }
            bug.module_text = ir::moduleToString(*repro);
            bug.repro_path = writeRepro(bug, opts.corpus_dir);
            fprintf(stderr, "[treegion-fuzz]   wrote %s\n",
                    bug.repro_path.c_str());
            result.bugs.push_back(std::move(bug));
        }
    }
    return result;
}

std::vector<ProxyAuditRow>
runProxyAudit(int width, size_t jobs)
{
    support::TraceScope span("proxy_audit", "fuzz");
    const std::vector<workloads::ProxySpec> proxies =
        workloads::specint95Proxies();

    struct Task
    {
        size_t proxy_index;
        FuzzConfig config;
    };
    std::vector<Task> tasks;
    std::vector<std::unique_ptr<ir::Module>> modules;
    std::vector<double> baselines;
    OracleOptions oracle;
    oracle.profile_runs = 8;
    oracle.equivalence_inputs = 1;

    for (size_t p = 0; p < proxies.size(); ++p) {
        modules.push_back(workloads::buildProxy(proxies[p]));
        ir::Function &fn = *modules.back()->functions().front();
        // The bb @ 1U baseline each estimate is reported against.
        ir::Function base = fn.clone();
        workloads::ProfileOptions prof;
        prof.input_seed = oracle.input_seed;
        prof.runs = oracle.profile_runs;
        prof.data_max = proxies[p].params.data_max;
        workloads::profileFunction(base, modules.back()->memWords(),
                                   prof);
        baselines.push_back(sched::estimateBaselineTime(base));
        for (const sched::RegionScheme scheme : kAllSchemes) {
            for (const sched::Heuristic heuristic : kAllHeuristics) {
                FuzzConfig config;
                config.scheme = scheme;
                config.heuristic = heuristic;
                config.width = width;
                tasks.push_back({p, config});
            }
        }
    }

    std::vector<ProxyAuditRow> rows(tasks.size());
    auto runTask = [&](size_t i) {
        const Task &task = tasks[i];
        const ir::Module &mod = *modules[task.proxy_index];
        OracleOptions cell_oracle = oracle;
        cell_oracle.data_max =
            proxies[task.proxy_index].params.data_max;
        ProxyAuditRow row;
        row.proxy = proxies[task.proxy_index].name;
        row.config = task.config;
        row.baseline = baselines[task.proxy_index];
        OracleFailure fail =
            checkCell(*mod.functions().front(), mod.memWords(),
                      task.config, cell_oracle, &row.estimate);
        row.oracle = fail.oracle;
        row.detail = fail.detail;
        rows[i] = std::move(row);
    };

    if (jobs == 1) {
        for (size_t i = 0; i < tasks.size(); ++i)
            runTask(i);
    } else {
        support::ThreadPool pool(jobs);
        std::vector<std::future<void>> futures;
        futures.reserve(tasks.size());
        for (size_t i = 0; i < tasks.size(); ++i)
            futures.push_back(pool.submit([&runTask, i] { runTask(i); }));
        for (std::future<void> &f : futures)
            f.get();
    }
    return rows;
}

} // namespace treegion::fuzz
