#include "fuzz/mutate.h"

namespace treegion::fuzz {

using support::Rng;
using workloads::GenParams;

namespace {

int
rangeInt(Rng &rng, int lo, int hi)
{
    return static_cast<int>(rng.nextRange(lo, hi));
}

/** Pick from a small set of interesting values. */
template <typename T>
T
pick(Rng &rng, std::initializer_list<T> values)
{
    return values.begin()[rng.nextBelow(values.size())];
}

} // namespace

GenParams
mutateParams(Rng &rng)
{
    GenParams p;
    p.seed = rng.next();

    // Memory must exceed the reserved counter area plus some data.
    p.mem_words = pick<size_t>(rng, {512, 1024, 4096});

    p.top_units = rangeInt(rng, 1, 16);
    p.max_depth = rangeInt(rng, 1, 5);
    p.max_blocks = pick<size_t>(rng, {48, 256, 4000});

    // Random structure mix; keep at least one weight positive.
    p.p_straight = rng.nextDouble();
    p.p_if = rng.nextDouble();
    p.p_ifelse = rng.nextDouble();
    p.p_switch = rng.nextDouble();
    p.p_ladder = rng.nextDouble();
    p.p_loop = rng.nextDouble();
    if (p.p_straight + p.p_if + p.p_ifelse + p.p_switch + p.p_ladder +
            p.p_loop <= 0.0)
        p.p_straight = 1.0;

    // Much wider switches than the proxy envelope (up to 24 arms).
    p.switch_width_min = rangeInt(rng, 2, 6);
    p.switch_width_max = p.switch_width_min + rangeInt(rng, 0, 18);

    p.ladder_len_min = rangeInt(rng, 1, 4);
    p.ladder_len_max = p.ladder_len_min + rangeInt(rng, 0, 6);

    // Zero-trip loops are legal and give zero-weight loop bodies.
    p.loop_trip_min = rangeInt(rng, 0, 3);
    p.loop_trip_max = p.loop_trip_min + rangeInt(rng, 0, 9);

    // Degenerate blocks: structures whose blocks carry no computation.
    p.block_ops_min = rangeInt(rng, 0, 3);
    p.block_ops_max = p.block_ops_min + rangeInt(rng, 0, 9);
    p.switch_arm_ops_min = rangeInt(rng, 0, 2);
    p.switch_arm_ops_max = p.switch_arm_ops_min + rangeInt(rng, 0, 4);

    p.nest_prob = rng.nextDouble() * 0.9;
    p.switch_arm_nest_prob = rng.nextDouble() * 0.6;
    p.chain_frac = rng.nextDouble();

    // Extreme biases produce paths the profile never sees.
    p.bias = pick<double>(rng, {0.0, 0.02, 0.35, 0.5, 0.65, 0.98, 1.0});
    p.ladder_break = rng.nextDouble();
    p.ladder_dead_prob = rng.nextDouble();

    p.mem_frac = rng.nextDouble() * 0.6;
    p.store_frac = rng.nextDouble();
    p.fp_frac = rng.nextBool(0.25) ? rng.nextDouble() * 0.3 : 0.0;

    // data_max=1 makes every loaded cell zero: all comparisons
    // degenerate and the hot/cold split collapses.
    p.data_max = pick<int>(rng, {1, 2, 3, 8, 100});

    p.pool_size = static_cast<size_t>(rangeInt(rng, 1, 8));
    return p;
}

} // namespace treegion::fuzz
