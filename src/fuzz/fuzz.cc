#include "fuzz/fuzz.h"

#include <cmath>
#include <sstream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "ooo/ooo_sim.h"
#include "sched/schedule_verifier.h"
#include "support/string_utils.h"
#include "vliw/equivalence.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

namespace treegion::fuzz {

using support::splitString;
using support::startsWith;
using support::strprintf;

namespace {

struct SchemeToken
{
    sched::RegionScheme scheme;
    const char *token;
};

constexpr SchemeToken kSchemes[] = {
    {sched::RegionScheme::BasicBlock, "bb"},
    {sched::RegionScheme::Slr, "slr"},
    {sched::RegionScheme::Superblock, "sb"},
    {sched::RegionScheme::Treegion, "tree"},
    {sched::RegionScheme::TreegionTailDup, "tree-td"},
    {sched::RegionScheme::Hyperblock, "hyper"},
};

struct HeuristicToken
{
    sched::Heuristic heuristic;
    const char *token;
};

constexpr HeuristicToken kHeuristics[] = {
    {sched::Heuristic::DependenceHeight, "dep-height"},
    {sched::Heuristic::ExitCount, "exit-count"},
    {sched::Heuristic::GlobalWeight, "global-weight"},
    {sched::Heuristic::WeightedCount, "weighted-count"},
};

const char *
schemeToken(sched::RegionScheme scheme)
{
    for (const SchemeToken &s : kSchemes) {
        if (s.scheme == scheme)
            return s.token;
    }
    return "?";
}

const char *
heuristicToken(sched::Heuristic heuristic)
{
    for (const HeuristicToken &h : kHeuristics) {
        if (h.heuristic == heuristic)
            return h.token;
    }
    return "?";
}

bool
parseField(const std::string &field, const char *key, std::string &value)
{
    const std::string prefix = std::string(key) + "=";
    if (!startsWith(field, prefix))
        return false;
    value = field.substr(prefix.size());
    return true;
}

/** First line of @p text, truncated for report readability. */
std::string
firstLine(const std::string &text, size_t max_len = 200)
{
    std::string line = text.substr(0, text.find('\n'));
    if (line.size() > max_len)
        line = line.substr(0, max_len) + "...";
    return line;
}

/** Relative-tolerance comparison for profile-weight arithmetic. */
bool
closeEnough(double a, double b)
{
    return std::fabs(a - b) <= 1e-6 * std::max({1.0, std::fabs(a),
                                                std::fabs(b)});
}

OracleFailure
checkCostModel(const sched::PipelineResult &res,
               const ir::Function &transformed)
{
    OracleFailure fail;
    auto err = [&](std::string detail) {
        if (!fail) {
            fail.oracle = "cost-model";
            fail.detail = std::move(detail);
        }
    };
    double total_estimate = 0.0;
    for (const auto &[root, rs] : res.schedule.regions) {
        double exit_weight = 0.0;
        for (const sched::ScheduledExit &exit : rs.exits) {
            if (exit.weight < 0.0)
                err(strprintf("region bb%u: negative exit weight %g",
                              root, exit.weight));
            exit_weight += exit.weight;
        }
        const double root_weight = transformed.block(root).weight();
        if (!closeEnough(exit_weight, root_weight)) {
            err(strprintf("region bb%u: exit weights sum to %g but "
                          "the root block's weight is %g",
                          root, exit_weight, root_weight));
        }
        const double estimate = sched::estimateRegionTime(rs);
        total_estimate += estimate;
        if (exit_weight <= 0.0) {
            if (estimate != 0.0)
                err(strprintf("region bb%u: never executed but "
                              "estimate is %g", root, estimate));
            continue;
        }
        if (estimate + 1e-9 < exit_weight ||
            estimate > exit_weight * rs.length + 1e-9) {
            err(strprintf("region bb%u: estimate %g outside "
                          "[W, W*length] = [%g, %g]",
                          root, estimate, exit_weight,
                          exit_weight * rs.length));
        }
    }
    if (!closeEnough(total_estimate, res.estimated_time)) {
        err(strprintf("pipeline estimated_time %g != sum of region "
                      "estimates %g", res.estimated_time,
                      total_estimate));
    }
    if (res.code_expansion < 1.0 - 1e-9) {
        err(strprintf("code expansion %g < 1", res.code_expansion));
    }
    return fail;
}

/**
 * Fifth oracle: the in-order VLIW simulator and the out-of-order
 * backend must produce identical architectural outcomes (return
 * value, memory image, region-root trace, and the architectural
 * counters) for every named OoO configuration.
 */
OracleFailure
checkBackendAgreement(ir::Function &transformed,
                      const sched::FunctionSchedule &schedule,
                      const std::vector<int64_t> &memory, int input)
{
    const vliw::VliwResult v =
        vliw::runScheduled(transformed, schedule, memory);
    if (!v.completed)
        return {};  // cycle limit hit; nothing to compare

    for (const ooo::OooConfig &config : ooo::oooConfigs()) {
        const ooo::OooResult o =
            ooo::runOutOfOrder(transformed, schedule, memory, config);
        auto diverged = [&](std::string detail) -> OracleFailure {
            return {"ooo-equivalence",
                    strprintf("input %d, %s: %s", input,
                              config.name.c_str(), detail.c_str())};
        };
        if (!o.arch.completed)
            return diverged("ooo hit its cycle limit but the vliw "
                            "backend completed");
        if (o.arch.ret_value != v.ret_value) {
            return diverged(strprintf(
                "return value %lld != vliw %lld",
                static_cast<long long>(o.arch.ret_value),
                static_cast<long long>(v.ret_value)));
        }
        for (size_t i = 0; i < v.memory.size(); ++i) {
            if (o.arch.memory[i] != v.memory[i]) {
                return diverged(strprintf(
                    "memory[%zu]: %lld != vliw %lld", i,
                    static_cast<long long>(o.arch.memory[i]),
                    static_cast<long long>(v.memory[i])));
            }
        }
        if (o.arch.trace != v.trace) {
            return diverged(strprintf(
                "region trace: %zu entries != vliw %zu",
                o.arch.trace.size(), v.trace.size()));
        }
        if (o.arch.regions_executed != v.regions_executed ||
            o.arch.copies_applied != v.copies_applied ||
            o.arch.ops_executed != v.ops_executed) {
            return diverged(strprintf(
                "counters (regions %llu copies %llu ops %llu) != "
                "vliw (%llu %llu %llu)",
                static_cast<unsigned long long>(
                    o.arch.regions_executed),
                static_cast<unsigned long long>(
                    o.arch.copies_applied),
                static_cast<unsigned long long>(o.arch.ops_executed),
                static_cast<unsigned long long>(v.regions_executed),
                static_cast<unsigned long long>(v.copies_applied),
                static_cast<unsigned long long>(v.ops_executed)));
        }
    }
    return {};
}

} // namespace

std::string
FuzzConfig::str() const
{
    return strprintf("scheme=%s heuristic=%s width=%d dom-par=%d "
                     "pbr=%d",
                     schemeToken(scheme), heuristicToken(heuristic),
                     width, dominator_parallelism ? 1 : 0,
                     materialize_pbr ? 1 : 0);
}

sched::PipelineOptions
FuzzConfig::pipelineOptions() const
{
    sched::PipelineOptions options;
    options.scheme = scheme;
    options.model = sched::MachineModel::custom(width);
    options.sched.heuristic = heuristic;
    options.sched.dominator_parallelism = dominator_parallelism;
    options.sched.materialize_pbr = materialize_pbr;
    return options;
}

bool
parseFuzzConfig(const std::string &text, FuzzConfig &out,
                std::string *error)
{
    auto bad = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    for (const std::string &field : splitString(text, ' ')) {
        if (field.empty())
            continue;
        std::string value;
        if (parseField(field, "scheme", value)) {
            bool found = false;
            for (const SchemeToken &s : kSchemes) {
                if (value == s.token) {
                    out.scheme = s.scheme;
                    found = true;
                }
            }
            if (!found)
                return bad("unknown scheme '" + value + "'");
        } else if (parseField(field, "heuristic", value)) {
            bool found = false;
            for (const HeuristicToken &h : kHeuristics) {
                if (value == h.token) {
                    out.heuristic = h.heuristic;
                    found = true;
                }
            }
            if (!found)
                return bad("unknown heuristic '" + value + "'");
        } else if (parseField(field, "width", value)) {
            out.width = std::atoi(value.c_str());
            if (out.width <= 0)
                return bad("bad width '" + value + "'");
        } else if (parseField(field, "dom-par", value)) {
            out.dominator_parallelism = value != "0";
        } else if (parseField(field, "pbr", value)) {
            out.materialize_pbr = value != "0";
        } else {
            return bad("unknown config field '" + field + "'");
        }
    }
    return true;
}

OracleFailure
checkCell(const ir::Function &fn, size_t mem_words,
          const FuzzConfig &config, const OracleOptions &opts,
          double *estimated_time)
{
    // Profile a private clone; the profile drives region formation
    // and is what the cost-model oracle checks conservation against.
    ir::Function profiled = fn.clone();
    workloads::ProfileOptions prof;
    prof.input_seed = opts.input_seed;
    prof.runs = opts.profile_runs;
    prof.data_max = opts.data_max;
    workloads::profileFunction(profiled, mem_words, prof);

    // Compile on a second, private clone (tail-duplicating schemes
    // mutate the function they compile).
    sched::ClonedPipelineRun run =
        sched::runPipelineOnClone(profiled, config.pipelineOptions());
    ir::Function &transformed = run.fn;
    sched::PipelineResult &res = run.result;
    if (estimated_time)
        *estimated_time = res.estimated_time;

    if (opts.tamper == 1) {
        // Fault injection: corrupt one exit record's cycle. The
        // legality oracle must catch this on any program whose
        // schedule has at least one exit.
        for (auto &[root, rs] : res.schedule.regions) {
            if (!rs.exits.empty()) {
                rs.exits.back().cycle += 1;
                break;
            }
        }
    }

    // Oracle: IR verifier on the transformed sequential function.
    {
        const auto problems =
            ir::verifyFunction(transformed, ir::VerifyLevel::Structural);
        if (!problems.empty())
            return {"ir-verify", firstLine(problems.front())};
    }

    // Oracle: schedule legality.
    {
        const auto problems = sched::verifyFunctionSchedule(
            res.schedule, config.width);
        if (!problems.empty())
            return {"legality", firstLine(problems.front())};
    }

    // Oracle: cost-model sanity.
    if (OracleFailure fail = checkCostModel(res, transformed))
        return fail;

    // Oracle: simulator equivalence on a family of input images.
    for (int i = 0; i < opts.equivalence_inputs; ++i) {
        const std::vector<int64_t> memory = workloads::makeInputMemory(
            mem_words, opts.input_seed + static_cast<uint64_t>(i),
            opts.data_max);
        vliw::EquivalenceReport report = vliw::checkEquivalence(
            profiled, transformed, res.schedule, memory);
        if (report.incomplete)
            continue;  // an execution limit was hit; nothing compared
        if (!report.ok) {
            return {"equivalence",
                    strprintf("input %d: %s", i,
                              firstLine(report.detail).c_str())};
        }
        // Oracle: dual-backend agreement (in-order VLIW vs the
        // out-of-order model, every named OoO configuration).
        if (OracleFailure fail = checkBackendAgreement(
                transformed, res.schedule, memory, i))
            return fail;
    }
    return {};
}

OracleFailure
checkRoundTrip(const ir::Module &mod)
{
    const std::string once = ir::moduleToString(mod);
    std::string error;
    std::unique_ptr<ir::Module> reparsed = ir::parseModule(once, &error);
    if (!reparsed)
        return {"round-trip", "print output failed to reparse: " +
                                  firstLine(error)};
    const std::string twice = ir::moduleToString(*reparsed);
    if (once != twice) {
        // Report the first differing line for the reducer and the
        // human reading the repro.
        const auto a = splitString(once, '\n');
        const auto b = splitString(twice, '\n');
        for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
            if (a[i] != b[i]) {
                return {"round-trip",
                        strprintf("line %zu: '%s' reprints as '%s'",
                                  i + 1, a[i].c_str(), b[i].c_str())};
            }
        }
        return {"round-trip",
                strprintf("reprint has %zu lines, original %zu",
                          b.size(), a.size())};
    }
    return {};
}

std::string
makeReproHeader(const FuzzConfig &config, const OracleOptions &opts,
                const std::string &oracle, const std::string &detail)
{
    std::ostringstream os;
    os << "# treegion-fuzz repro\n";
    os << "# oracle=" << oracle << "\n";
    os << "# config: " << config.str() << "\n";
    os << strprintf("# oracle-options: input-seed=%llu inputs=%d "
                    "profile-runs=%d data-max=%d tamper=%d\n",
                    static_cast<unsigned long long>(opts.input_seed),
                    opts.equivalence_inputs, opts.profile_runs,
                    opts.data_max, opts.tamper);
    if (!detail.empty())
        os << "# detail: " << firstLine(detail) << "\n";
    return os.str();
}

bool
parseReproHeader(const std::string &text, FuzzConfig &config,
                 OracleOptions &opts, std::string *oracle,
                 std::string *error)
{
    auto bad = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    bool saw_oracle = false;
    bool saw_config = false;
    for (const std::string &raw : splitString(text, '\n')) {
        const std::string line{support::trim(raw)};
        if (!startsWith(line, "#"))
            continue;
        const std::string body{support::trim(line.substr(1))};
        std::string value;
        if (parseField(body, "oracle", value)) {
            if (oracle)
                *oracle = value;
            saw_oracle = true;
        } else if (startsWith(body, "config: ")) {
            std::string cfg_error;
            if (!parseFuzzConfig(body.substr(8), config, &cfg_error))
                return bad(cfg_error);
            saw_config = true;
        } else if (startsWith(body, "oracle-options: ")) {
            for (const std::string &field :
                 splitString(body.substr(16), ' ')) {
                if (parseField(field, "input-seed", value))
                    opts.input_seed = std::strtoull(value.c_str(),
                                                    nullptr, 10);
                else if (parseField(field, "inputs", value))
                    opts.equivalence_inputs = std::atoi(value.c_str());
                else if (parseField(field, "profile-runs", value))
                    opts.profile_runs = std::atoi(value.c_str());
                else if (parseField(field, "data-max", value))
                    opts.data_max = std::atoi(value.c_str());
                else if (parseField(field, "tamper", value))
                    opts.tamper = std::atoi(value.c_str());
            }
        }
    }
    if (!saw_oracle || !saw_config)
        return bad("missing '# oracle=' or '# config:' header line");
    return true;
}

} // namespace treegion::fuzz
