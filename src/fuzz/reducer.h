/**
 * @file
 * Delta-debugging repro reduction at the IR level.
 *
 * Given a module that fails an oracle, the reducer repeatedly tries
 * semantic-shrinking transformations — collapse conditional branches
 * to one side (dropping whole subgraphs), delete computation ops in
 * ddmin-style chunks, zero immediates — and keeps a candidate only
 * when it still (a) passes the Schedulable IR verifier (it must
 * remain a valid pipeline input) and (b) fails the *same* oracle.
 * Iterates to a fixed point, so the final module is 1-minimal with
 * respect to the transformation set: no single block collapse, op
 * deletion or constant shrink preserves the failure.
 */

#ifndef TREEGION_FUZZ_REDUCER_H
#define TREEGION_FUZZ_REDUCER_H

#include <functional>
#include <string>

#include "fuzz/fuzz.h"

namespace treegion::fuzz {

/** Oracle predicate over a candidate module. */
using OraclePredicate =
    std::function<OracleFailure(const ir::Module &)>;

/** Reduction knobs. */
struct ReduceOptions
{
    int max_rounds = 10;          ///< full fixed-point iterations
    size_t max_candidates = 4000; ///< total oracle evaluations
};

/** What the reducer achieved. */
struct ReduceResult
{
    size_t original_ops = 0;  ///< op count before reduction
    size_t reduced_ops = 0;   ///< op count after reduction
    size_t candidates = 0;    ///< oracle evaluations spent
    int rounds = 0;           ///< fixed-point iterations run
};

/**
 * Shrink @p mod in place while @p pred keeps failing with
 * @p oracle. @p mod must contain exactly one function and must
 * already fail: pred(mod).oracle == oracle.
 */
ReduceResult reduceModule(ir::Module &mod, const std::string &oracle,
                          const OraclePredicate &pred,
                          const ReduceOptions &opts = {});

} // namespace treegion::fuzz

#endif // TREEGION_FUZZ_REDUCER_H
