/**
 * @file
 * Differential fuzzing of the full compilation pipeline.
 *
 * A fuzz *cell* is one (program, configuration) pair: the program is
 * compiled through region formation, lowering and scheduling under
 * the configuration, and five oracles cross-check the result against
 * the sequential program:
 *
 *  1. equivalence — the VLIW simulator must compute the same return
 *     value, memory image and region-root control trace as the
 *     sequential interpreter (vliw::checkEquivalence);
 *  2. legality   — the schedule must pass sched::verifySchedule
 *     (placement, dataflow latencies, memory program order along
 *     paths, predicate definitions, exit records);
 *  3. ir-verify  — the transformed sequential function (after tail
 *     duplication) must still pass the IR verifier;
 *  4. cost-model — performance-model sanity: per region, exit weights
 *     conserve the root's profile weight, and the time estimate lies
 *     in [W, W * length] for exit weight sum W; code expansion never
 *     drops below 1;
 *  5. ooo-equivalence — the out-of-order backend (every named
 *     configuration, ooo-small and ooo-wide) must produce the same
 *     architectural outcome as the in-order VLIW simulator on the
 *     same schedule: return value, memory image, region-root trace
 *     and the architectural counters (regions, copies, retired ops).
 *
 * A further scheme-independent oracle checks that printing a module
 * and reparsing it is a fixed point (checkRoundTrip).
 *
 * Everything here is deterministic: a cell's outcome is a pure
 * function of (module text, FuzzConfig, OracleOptions).
 */

#ifndef TREEGION_FUZZ_FUZZ_H
#define TREEGION_FUZZ_FUZZ_H

#include <string>

#include "ir/module.h"
#include "sched/pipeline.h"

namespace treegion::fuzz {

/** One pipeline configuration under test. */
struct FuzzConfig
{
    sched::RegionScheme scheme = sched::RegionScheme::Treegion;
    sched::Heuristic heuristic = sched::Heuristic::GlobalWeight;
    int width = 4;  ///< issue width (1/4/8 in the sweep)
    bool dominator_parallelism = true;
    bool materialize_pbr = false;

    /** Render as "scheme=tree heuristic=global-weight width=4 ...". */
    std::string str() const;

    /** Build the equivalent pipeline options. */
    sched::PipelineOptions pipelineOptions() const;
};

/** Parse the FuzzConfig::str() format. @return false on error. */
bool parseFuzzConfig(const std::string &text, FuzzConfig &out,
                     std::string *error = nullptr);

/** Inputs and knobs for the oracle run (not part of the config under
 * test, but needed to reproduce a failure exactly). */
struct OracleOptions
{
    uint64_t input_seed = 1000;  ///< base seed of the input family
    int equivalence_inputs = 2;  ///< input images cross-checked
    int profile_runs = 4;        ///< training runs for the profile
    int data_max = 100;          ///< input data range [0, data_max)

    /**
     * Test-only fault injection: 0 = off, 1 = corrupt the last exit
     * record's cycle after scheduling (guaranteed legality-oracle
     * failure on any program with at least one region exit). Used to
     * red-test the harness and to demonstrate the reducer.
     */
    int tamper = 0;
};

/** Outcome of an oracle run; empty oracle name means "all passed". */
struct OracleFailure
{
    std::string oracle;  ///< "equivalence", "legality", "ir-verify",
                         ///< "cost-model", "ooo-equivalence",
                         ///< "round-trip", or ""
    std::string detail;  ///< first problem, human-readable

    explicit operator bool() const { return !oracle.empty(); }
};

/**
 * Compile @p fn under @p config and run all five oracles.
 *
 * @p fn is never mutated: the cell profiles and compiles private
 * clones. @p mem_words sizes the input images (module mem= field).
 * @p estimated_time, when non-null, receives the pipeline's
 * estimated execution time (for audits and reports).
 */
OracleFailure checkCell(const ir::Function &fn, size_t mem_words,
                        const FuzzConfig &config,
                        const OracleOptions &opts = {},
                        double *estimated_time = nullptr);

/** Check print -> parse -> print is a fixed point for @p mod. */
OracleFailure checkRoundTrip(const ir::Module &mod);

/**
 * Render the corpus repro header: "# "-prefixed lines (skipped by the
 * IR parser) recording the failing oracle, config and oracle options.
 */
std::string makeReproHeader(const FuzzConfig &config,
                            const OracleOptions &opts,
                            const std::string &oracle,
                            const std::string &detail);

/**
 * Parse a repro file's header back. @return false on a malformed
 * header. @p oracle receives the recorded failing oracle name.
 */
bool parseReproHeader(const std::string &text, FuzzConfig &config,
                      OracleOptions &opts, std::string *oracle,
                      std::string *error = nullptr);

} // namespace treegion::fuzz

#endif // TREEGION_FUZZ_FUZZ_H
