/**
 * @file
 * Generator-parameter mutation for fuzzing.
 *
 * The SPECint95 proxies keep workloads::GenParams inside a benchmark
 * -like envelope; the fuzzer deliberately leaves it: deeper nesting,
 * much wider switches, degenerate blocks (zero computation ops),
 * zero-trip loops, fully biased branches (zero-weight paths), tiny
 * data ranges (constant-folding-like degenerate comparisons) and
 * single-register live pools.
 */

#ifndef TREEGION_FUZZ_MUTATE_H
#define TREEGION_FUZZ_MUTATE_H

#include "support/rng.h"
#include "workloads/synthetic.h"

namespace treegion::fuzz {

/** Draw a random point of the widened generator envelope. */
workloads::GenParams mutateParams(support::Rng &rng);

} // namespace treegion::fuzz

#endif // TREEGION_FUZZ_MUTATE_H
