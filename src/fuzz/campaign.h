/**
 * @file
 * Fuzz campaign driver: the shard-and-check loop behind
 * tools/treegion-fuzz.
 *
 * Each generated program fans out into one cell per (scheme x
 * heuristic x width) with randomly drawn lowering toggles; cells are
 * sharded across a support::ThreadPool and each runs under a
 * TraceScope span. Failures are deduplicated per program by oracle,
 * shrunk by the delta-debugging reducer, and written to the corpus
 * as self-describing .tir repro files that
 * tests/fuzz_regression_test.cc replays.
 */

#ifndef TREEGION_FUZZ_CAMPAIGN_H
#define TREEGION_FUZZ_CAMPAIGN_H

#include <string>
#include <vector>

#include "fuzz/fuzz.h"
#include "fuzz/reducer.h"

namespace treegion::fuzz {

/** Campaign knobs (the treegion-fuzz command line). */
struct CampaignOptions
{
    double budget_seconds = 30.0;  ///< wall-clock stop condition
    size_t max_programs = 0;       ///< 0 = until the budget runs out
    size_t jobs = 0;               ///< worker threads (0 = hardware)
    uint64_t seed = 1;             ///< campaign RNG seed
    std::string corpus_dir = "fuzz/corpus";
    bool reduce = true;            ///< shrink failures before writing
    size_t max_repros = 16;        ///< corpus files written per run
    int widths[3] = {1, 4, 8};     ///< issue widths swept
    OracleOptions oracle;          ///< shared oracle knobs (tamper!)
    ReduceOptions reduce_opts;
    bool verbose = false;          ///< per-program progress lines
};

/** One minimized finding. */
struct FoundBug
{
    FuzzConfig config;
    OracleOptions oracle_opts;
    std::string oracle;
    std::string detail;
    std::string module_text;  ///< reduced program, textual IR
    size_t original_ops = 0;
    size_t reduced_ops = 0;
    std::string repro_path;   ///< corpus file written ("" if none)
};

/** Campaign outcome. */
struct CampaignResult
{
    size_t programs = 0;
    size_t cells = 0;
    size_t failures = 0;  ///< failing cells before dedup/reduction
    std::vector<FoundBug> bugs;
};

/** Run a fuzz campaign. */
CampaignResult runCampaign(const CampaignOptions &opts);

/**
 * Write @p bug to @p corpus_dir (created if missing) as a
 * self-describing .tir repro. @return the file path.
 */
std::string writeRepro(const FoundBug &bug,
                       const std::string &corpus_dir);

/** One row of the estimate-sanity audit over the SPEC proxies. */
struct ProxyAuditRow
{
    std::string proxy;
    FuzzConfig config;
    std::string oracle;  ///< failing oracle, empty = all passed
    std::string detail;
    double estimate = 0.0;  ///< estimated cycles under config
    double baseline = 0.0;  ///< bb @ 1U estimated cycles
};

/**
 * Run every oracle over the eight SPECint95 proxies at issue width
 * @p width, across all schemes x heuristics (dominator parallelism
 * on, PBR off — the paper's configuration). Used to test whether the
 * recorded 4U speedup deviation coincides with invariant violations.
 */
std::vector<ProxyAuditRow> runProxyAudit(int width, size_t jobs);

} // namespace treegion::fuzz

#endif // TREEGION_FUZZ_CAMPAIGN_H
