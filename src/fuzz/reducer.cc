#include "fuzz/reducer.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "ir/verifier.h"
#include "support/logging.h"
#include "support/trace.h"
#include "vliw/interpreter.h"

namespace treegion::fuzz {

namespace {

/** Deep-copy a single-function module. */
std::unique_ptr<ir::Module>
cloneModule(const ir::Module &mod)
{
    TG_ASSERT(mod.functions().size() == 1);
    auto out = std::make_unique<ir::Module>(mod.name());
    out->setMemWords(mod.memWords());
    out->functions().push_back(std::make_unique<ir::Function>(
        mod.functions().front()->clone()));
    return out;
}

/**
 * Drop stale profile data after a CFG mutation (the oracle run
 * re-profiles from scratch; stale edge-weight vectors would trip the
 * structural verifier once a terminator changed arity).
 */
void
clearProfile(ir::Function &fn)
{
    fn.forEachBlockMut([](ir::BasicBlock &b) {
        b.setWeight(0.0);
        b.edgeWeights().clear();
    });
}

struct Ctx
{
    const std::string &oracle;
    const OraclePredicate &pred;
    const ReduceOptions &opts;
    uint64_t gate_ops;
    ReduceResult res;

    bool
    budgetLeft() const
    {
        return res.candidates < opts.max_candidates;
    }
};

/**
 * Build a candidate by applying @p mutate to a clone, and adopt it
 * into @p mod when it is still valid pipeline input and still fails
 * the same oracle. @p mutate returns false when it had no effect.
 */
bool
tryCandidate(ir::Module &mod, Ctx &ctx,
             const std::function<bool(ir::Function &)> &mutate)
{
    if (!ctx.budgetLeft())
        return false;
    std::unique_ptr<ir::Module> candidate = cloneModule(mod);
    ir::Function &fn = *candidate->functions().front();
    if (!mutate(fn))
        return false;
    fn.removeUnreachableBlocks();
    clearProfile(fn);
    if (!ir::verifyFunction(fn, ir::VerifyLevel::Schedulable).empty())
        return false;
    ++ctx.res.candidates;
    // Reject candidates that no longer terminate: collapsing a loop
    // latch onto its back edge spins forever, and an op deletion can
    // knock an MWBR selector out of range (the interpreter halts
    // without completing). Termination of generated programs is data
    // independent (counted loops), so one zero image suffices, and
    // the op budget is scaled from the original's run length.
    vliw::InterpOptions interp;
    interp.max_ops = ctx.gate_ops;
    if (!vliw::runSequential(
             fn, std::vector<int64_t>(candidate->memWords(), 0), interp)
             .completed)
        return false;
    if (ctx.pred(*candidate).oracle != ctx.oracle)
        return false;
    mod.functions().front() = std::move(candidate->functions().front());
    return true;
}

std::vector<ir::BlockId>
conditionalBlocks(const ir::Module &mod)
{
    std::vector<ir::BlockId> ids;
    mod.functions().front()->forEachBlock([&](const ir::BasicBlock &b) {
        if (b.hasTerminator() && b.terminator().targets.size() > 1)
            ids.push_back(b.id());
    });
    return ids;
}

/**
 * Collapse multi-way terminators to unconditional branches in ddmin
 * chunks; every collapse orphans the other side's subgraph, which
 * the unreachable-block sweep then deletes.
 */
bool
collapsePass(ir::Module &mod, Ctx &ctx)
{
    bool any = false;
    for (int side = 0; side < 2; ++side) {
        size_t chunk = conditionalBlocks(mod).size();
        while (chunk >= 1 && ctx.budgetLeft()) {
            const std::vector<ir::BlockId> ids = conditionalBlocks(mod);
            for (size_t start = 0; start < ids.size(); start += chunk) {
                const size_t end = std::min(start + chunk, ids.size());
                any |= tryCandidate(mod, ctx, [&](ir::Function &fn) {
                    bool changed = false;
                    for (size_t i = start; i < end; ++i) {
                        if (!fn.hasBlock(ids[i]))
                            continue;
                        const ir::Op &term =
                            fn.block(ids[i]).terminator();
                        if (term.targets.size() < 2)
                            continue;
                        const ir::BlockId target =
                            side == 0 ? term.targets.front()
                                      : term.targets.back();
                        fn.replaceTerminator(ids[i],
                                             ir::makeBru(target));
                        changed = true;
                    }
                    return changed;
                });
                if (!ctx.budgetLeft())
                    return any;
            }
            if (chunk == 1)
                break;
            chunk /= 2;
        }
    }
    return any;
}

std::vector<std::pair<ir::BlockId, ir::OpId>>
bodyOps(const ir::Module &mod)
{
    std::vector<std::pair<ir::BlockId, ir::OpId>> ops;
    mod.functions().front()->forEachBlock([&](const ir::BasicBlock &b) {
        for (size_t i = 0; i + 1 < b.ops().size(); ++i)
            ops.emplace_back(b.id(), b.ops()[i].id);
    });
    return ops;
}

/** Delete non-terminator ops in ddmin chunks. */
bool
deleteOpsPass(ir::Module &mod, Ctx &ctx)
{
    bool any = false;
    size_t chunk = bodyOps(mod).size();
    while (chunk >= 1 && ctx.budgetLeft()) {
        const auto ops = bodyOps(mod);
        if (ops.empty())
            break;
        for (size_t start = 0; start < ops.size(); start += chunk) {
            const size_t end = std::min(start + chunk, ops.size());
            any |= tryCandidate(mod, ctx, [&](ir::Function &fn) {
                bool changed = false;
                for (size_t i = start; i < end; ++i) {
                    const auto [block_id, op_id] = ops[i];
                    if (!fn.hasBlock(block_id))
                        continue;
                    auto &body = fn.block(block_id).ops();
                    for (size_t j = 0; j + 1 < body.size(); ++j) {
                        if (body[j].id == op_id) {
                            body.erase(body.begin() +
                                       static_cast<ptrdiff_t>(j));
                            changed = true;
                            break;
                        }
                    }
                }
                return changed;
            });
            if (!ctx.budgetLeft())
                return any;
        }
        if (chunk == 1)
            break;
        chunk /= 2;
    }
    return any;
}

/** Shrink immediates toward zero, one operand at a time. */
bool
shrinkImmediatesPass(ir::Module &mod, Ctx &ctx)
{
    struct ImmSite
    {
        ir::BlockId block;
        ir::OpId op;
        size_t src;
        int64_t value;
    };
    std::vector<ImmSite> sites;
    mod.functions().front()->forEachBlock([&](const ir::BasicBlock &b) {
        for (const ir::Op &op : b.ops()) {
            for (size_t s = 0; s < op.srcs.size(); ++s) {
                if (op.srcs[s].isImm() && op.srcs[s].imm != 0)
                    sites.push_back(
                        {b.id(), op.id, s, op.srcs[s].imm});
            }
        }
    });
    bool any = false;
    for (const ImmSite &site : sites) {
        for (const int64_t replacement :
             {int64_t{0}, site.value / 2}) {
            if (replacement == site.value)
                continue;
            const bool ok = tryCandidate(mod, ctx, [&](ir::Function &fn) {
                if (!fn.hasBlock(site.block))
                    return false;
                for (ir::Op &op : fn.block(site.block).ops()) {
                    if (op.id == site.op && site.src < op.srcs.size() &&
                        op.srcs[site.src].isImm()) {
                        if (op.srcs[site.src].imm == replacement)
                            return false;
                        op.srcs[site.src].imm = replacement;
                        return true;
                    }
                }
                return false;
            });
            if (!ctx.budgetLeft())
                return any;
            if (ok) {
                any = true;
                break;  // shrunk to 0; nothing further for this site
            }
        }
    }
    return any;
}

} // namespace

ReduceResult
reduceModule(ir::Module &mod, const std::string &oracle,
             const OraclePredicate &pred, const ReduceOptions &opts)
{
    support::TraceScope span("reduce", "fuzz");
    span.arg("oracle", oracle);
    TG_ASSERT(mod.functions().size() == 1);
    // Size the candidate termination gate from the original's actual
    // run length so long-but-terminating programs still reduce.
    const vliw::InterpOptions probe;
    const vliw::ExecResult base = vliw::runSequential(
        *mod.functions().front(),
        std::vector<int64_t>(mod.memWords(), 0), probe);
    const uint64_t gate_ops =
        base.completed
            ? std::max<uint64_t>(100'000, 4 * base.ops_executed)
            : probe.max_ops;
    Ctx ctx{oracle, pred, opts, gate_ops, {}};
    ctx.res.original_ops = mod.functions().front()->totalOps();
    for (int round = 0; round < opts.max_rounds; ++round) {
        bool changed = false;
        changed |= collapsePass(mod, ctx);
        changed |= deleteOpsPass(mod, ctx);
        changed |= shrinkImmediatesPass(mod, ctx);
        ++ctx.res.rounds;
        if (!changed || !ctx.budgetLeft())
            break;
    }
    ctx.res.reduced_ops = mod.functions().front()->totalOps();
    return ctx.res;
}

} // namespace treegion::fuzz
