#include "region/region_stats.h"

#include <algorithm>

#include "support/logging.h"

namespace treegion::region {

RegionStats
computeRegionStats(const ir::Function &fn, const RegionSet &set)
{
    RegionStats stats;
    stats.num_regions = set.regions().size();
    size_t total_blocks = 0;
    for (const Region &r : set.regions()) {
        total_blocks += r.size();
        stats.max_blocks = std::max(stats.max_blocks, r.size());
        stats.total_ops += r.totalOps(fn);
    }
    if (stats.num_regions > 0) {
        stats.avg_blocks = static_cast<double>(total_blocks) /
                           static_cast<double>(stats.num_regions);
        stats.avg_ops = static_cast<double>(stats.total_ops) /
                        static_cast<double>(stats.num_regions);
    }
    return stats;
}

double
codeExpansionFactor(const ir::Function &fn, size_t original_ops)
{
    TG_ASSERT(original_ops > 0);
    return static_cast<double>(fn.totalOps()) /
           static_cast<double>(original_ops);
}

} // namespace treegion::region
