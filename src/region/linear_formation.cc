#include "region/formation.h"

#include <deque>

#include "support/logging.h"

namespace treegion::region {

using ir::BlockId;
using ir::kNoBlock;

RegionSet
formBasicBlockRegions(ir::Function &fn)
{
    RegionSet set;
    fn.forEachBlock([&](const ir::BasicBlock &b) {
        set.add(Region(RegionKind::BasicBlock, b.id()));
    });
    return set;
}

namespace {

/**
 * Pick the successor slot with the highest profile edge weight
 * (ties: first slot). @return false when the block has no targets.
 */
bool
bestSuccessorSlot(const ir::BasicBlock &b, size_t &slot_out)
{
    const auto &targets = b.terminator().targets;
    if (targets.empty())
        return false;
    const auto &weights = b.edgeWeights();
    size_t best = 0;
    double best_w = -1.0;
    for (size_t i = 0; i < targets.size(); ++i) {
        const double w = i < weights.size() ? weights[i] : 0.0;
        if (w > best_w) {
            best_w = w;
            best = i;
        }
    }
    slot_out = best;
    return true;
}

} // namespace

RegionSet
formSlrs(ir::Function &fn)
{
    RegionSet set;
    std::deque<BlockId> unprocessed = {fn.entry()};

    auto grow = [&](BlockId root) {
        Region slr(RegionKind::Slr, root);
        BlockId cur = root;
        for (;;) {
            size_t slot;
            if (!bestSuccessorSlot(fn.block(cur), slot))
                break;
            const BlockId next = fn.block(cur).terminator().targets[slot];
            if (next == kNoBlock || slr.contains(next) ||
                set.covered(next) || fn.isMergePoint(next)) {
                break;
            }
            slr.addBlock(next, cur);
            cur = next;
        }
        for (const BlockId sapling : slr.saplings(fn)) {
            if (!set.covered(sapling))
                unprocessed.push_back(sapling);
        }
        set.add(std::move(slr));
    };

    while (!unprocessed.empty()) {
        const BlockId root = unprocessed.front();
        unprocessed.pop_front();
        if (!fn.hasBlock(root) || set.covered(root))
            continue;
        grow(root);
    }
    fn.forEachBlock([&](const ir::BasicBlock &b) {
        if (!set.covered(b.id()))
            unprocessed.push_back(b.id());
    });
    while (!unprocessed.empty()) {
        const BlockId root = unprocessed.front();
        unprocessed.pop_front();
        if (!fn.hasBlock(root) || set.covered(root))
            continue;
        grow(root);
    }
    return set;
}

} // namespace treegion::region
