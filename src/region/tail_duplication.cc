#include "region/tail_duplication.h"

#include <algorithm>
#include <deque>

#include "region/region.h"
#include "support/logging.h"

namespace treegion::region {

using ir::BasicBlock;
using ir::BlockId;

void
transferProfileFlow(ir::Function &fn, BlockId from, BlockId to,
                    double flow)
{
    BasicBlock &src = fn.block(from);
    BasicBlock &dst = fn.block(to);

    const double old_weight = src.weight();
    const double ratio =
        old_weight > 0.0 ? std::min(1.0, flow / old_weight) : 0.0;

    // The clone inherits the redirected flow, distributed over its
    // outgoing edges in the original's proportions.
    dst.setWeight(dst.weight() + flow);
    auto &dst_edges = dst.edgeWeights();
    dst_edges.assign(src.edgeWeights().size(), 0.0);
    for (size_t i = 0; i < dst_edges.size(); ++i)
        dst_edges[i] = src.edgeWeights()[i] * ratio;
    // With a zero-weight original, the redirected flow still has to
    // land somewhere; split it uniformly.
    if (old_weight <= 0.0 && !dst_edges.empty() && flow > 0.0) {
        for (double &w : dst_edges)
            w = flow / static_cast<double>(dst_edges.size());
    }

    // The original loses that flow.
    src.setWeight(std::max(0.0, old_weight - flow));
    for (double &w : src.edgeWeights())
        w *= (1.0 - ratio);
}

ir::BlockId
tailDuplicateEdge(ir::Function &fn, BlockId pred, size_t slot)
{
    BasicBlock &pb = fn.block(pred);
    const auto &targets = pb.terminator().targets;
    TG_ASSERT(slot < targets.size());
    const BlockId sapling = targets[slot];
    TG_ASSERT(sapling != ir::kNoBlock);

    const double edge_weight =
        slot < pb.edgeWeights().size() ? pb.edgeWeights()[slot] : 0.0;

    const BlockId clone = fn.cloneBlock(sapling);
    transferProfileFlow(fn, sapling, clone, edge_weight);

    // Redirect exactly this target slot.
    fn.block(pred).terminator().targets[slot] = clone;
    fn.invalidatePreds();
    return clone;
}

void
orphanSweep(ir::Function &fn, const RegionSet &set, BlockId start)
{
    std::deque<BlockId> work = {start};
    while (!work.empty()) {
        const BlockId id = work.front();
        work.pop_front();
        if (!fn.hasBlock(id) || set.covered(id) || id == fn.entry())
            continue;
        if (!fn.predsOf(id).empty())
            continue;
        const auto succs = fn.block(id).successors();
        fn.removeBlock(id);
        for (const BlockId succ : succs) {
            if (succ != ir::kNoBlock)
                work.push_back(succ);
        }
    }
}

} // namespace treegion::region
