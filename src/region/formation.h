/**
 * @file
 * Region formation entry points for all four region types.
 *
 * - formBasicBlockRegions: one region per block (baseline).
 * - formSlrs: simple linear regions — superblock-style growth along
 *   the highest-weight successor, but no tail duplication, so growth
 *   stops at merge points (paper Section 3).
 * - formTreegions: Fig. 2 — grow trees over every non-merge
 *   successor, no profile needed, no CFG mutation.
 * - formTreegionsTailDup: Fig. 11 — treegions expanded by tail
 *   duplication under code-expansion / path-count / merge-count
 *   limits. Mutates the CFG.
 * - formSuperblocks: profile-guided traces grown along the hottest
 *   successor with tail duplication of merge points. Mutates the CFG.
 */

#ifndef TREEGION_REGION_FORMATION_H
#define TREEGION_REGION_FORMATION_H

#include "region/region.h"
#include "region/tail_duplication.h"

namespace treegion::region {

/** One region per basic block. */
RegionSet formBasicBlockRegions(ir::Function &fn);

/** Simple linear regions (no tail duplication). */
RegionSet formSlrs(ir::Function &fn);

/** Treegions without tail duplication (Fig. 2). */
RegionSet formTreegions(ir::Function &fn);

/**
 * Treegions with tail duplication (Fig. 11). Mutates @p fn: clones
 * blocks, splits profile flow and removes orphaned originals.
 */
RegionSet formTreegionsTailDup(ir::Function &fn,
                               const TailDupLimits &limits);

/** Options for superblock formation. */
struct SuperblockOptions
{
    /**
     * Stop duplicating through a merge when the best outgoing edge's
     * profile weight is not above this (cold code is not worth
     * duplicating).
     */
    double cold_edge_weight = 0.0;

    /**
     * Classic trace-selection likelihood threshold: growth through a
     * merge point stops unless the best successor edge carries at
     * least this fraction of the block's flow.
     */
    double min_edge_prob = 0.55;

    /**
     * Hwu/Chang mutual-most-likely trace growth: absorb a merge
     * point only when the trace's edge into it is its strongest
     * incoming edge.
     */
    bool mutual_most_likely = true;

    /** Maximum blocks per superblock. */
    size_t max_blocks = 32;
};

/**
 * Superblocks: hottest-successor traces with tail duplication of
 * merge points. Mutates @p fn.
 */
RegionSet formSuperblocks(ir::Function &fn,
                          const SuperblockOptions &options = {});

/** Options for hyperblock formation (the paper's future work). */
struct HyperblockOptions
{
    /**
     * Mahlke-style block selection: a block joins the hyperblock only
     * if its weight is at least this fraction of the root's.
     */
    double min_weight_ratio = 0.05;

    /** Maximum blocks per hyperblock. */
    size_t max_blocks = 48;

    /** Maximum distinct root-to-leaf paths through the DAG. */
    size_t path_limit = 64;
};

/**
 * Hyperblocks: single-entry acyclic DAG regions that absorb merge
 * points whose predecessors are all inside (if-conversion regions).
 * Does not mutate @p fn — merges are handled by predication rather
 * than duplication.
 */
RegionSet formHyperblocks(ir::Function &fn,
                          const HyperblockOptions &options = {});

} // namespace treegion::region

#endif // TREEGION_REGION_FORMATION_H
