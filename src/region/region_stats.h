/**
 * @file
 * Region statistics backing Tables 1, 2, 3 and 4 of the paper.
 */

#ifndef TREEGION_REGION_REGION_STATS_H
#define TREEGION_REGION_REGION_STATS_H

#include "region/region.h"

namespace treegion::region {

/** Aggregate statistics over one RegionSet. */
struct RegionStats
{
    size_t num_regions = 0;   ///< total region count
    double avg_blocks = 0.0;  ///< average basic blocks per region
    size_t max_blocks = 0;    ///< largest region, in blocks
    double avg_ops = 0.0;     ///< average ops per region
    size_t total_ops = 0;     ///< total ops across all regions
};

/** Compute statistics for @p set over @p fn. */
RegionStats computeRegionStats(const ir::Function &fn,
                               const RegionSet &set);

/**
 * Code expansion factor (Table 3): current total op count of @p fn
 * over the pre-formation op count @p original_ops.
 */
double codeExpansionFactor(const ir::Function &fn, size_t original_ops);

} // namespace treegion::region

#endif // TREEGION_REGION_REGION_STATS_H
