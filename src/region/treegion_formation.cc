#include "region/formation.h"

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.h"
#include "support/remarks.h"

namespace treegion::region {

using ir::BlockId;
using ir::kNoBlock;

namespace {

/**
 * absorb-into-tree (paper Fig. 2): flood from @p start, absorbing
 * every successor that is not a merge point and not claimed by
 * another region. Successors are pushed to the front of the candidate
 * queue, matching the paper's depth-first growth.
 */
void
absorbIntoTree(ir::Function &fn, const RegionSet &set, Region &tree,
               BlockId start, BlockId start_parent)
{
    std::deque<std::pair<BlockId, BlockId>> candidates;  // (node, parent)
    candidates.emplace_back(start, start_parent);
    while (!candidates.empty()) {
        const auto [node, parent] = candidates.front();
        candidates.pop_front();
        if (tree.contains(node))
            continue;
        if (fn.isMergePoint(node) || set.covered(node)) {
            support::remark(support::RemarkKind::GrowthStopped)
                .block(node)
                .arg("root", tree.root())
                .arg("from", parent)
                .arg("reason", fn.isMergePoint(node) ? "merge-point"
                                                     : "claimed");
            continue;
        }

        tree.addBlock(node, parent);
        support::remark(support::RemarkKind::BlockAccepted)
            .block(node)
            .arg("root", tree.root())
            .arg("parent", parent);
        const auto succs = fn.block(node).successors();
        for (auto it = succs.rbegin(); it != succs.rend(); ++it) {
            if (*it != kNoBlock && !tree.contains(*it))
                candidates.emplace_front(*it, node);
        }
    }
}

/**
 * Ops over the non-duplicated members of @p tree: the "original code
 * size per treegion" the paper's expansion limit is measured against.
 * Tail-duplicated clones add to the region's total op count but not
 * to this base, so the ratio grows with every duplication.
 */
size_t
originalMemberOps(ir::Function &fn, const Region &tree)
{
    size_t ops = 0;
    for (const BlockId id : tree.blocks()) {
        const ir::BasicBlock &b = fn.block(id);
        if (b.originalId() == id)
            ops += b.ops().size();
    }
    return ops;
}

/**
 * Would absorbing a copy of @p sapling below @p from repeat the
 * sapling's original block along that root path? Duplicating a block
 * into *sibling* subtrees is ordinary tail duplication (the paper's
 * Fig. 12 turns every CFG path into a unique tree path); repeating it
 * along one path would be loop unrolling, which the paper does not
 * perform.
 */
bool
repeatsAlongPath(ir::Function &fn, const Region &tree, BlockId from,
                 BlockId sapling)
{
    const BlockId orig = fn.block(sapling).originalId();
    for (BlockId walk = from; walk != kNoBlock;
         walk = tree.parentOf(walk)) {
        if (fn.block(walk).originalId() == orig)
            return true;
    }
    return false;
}

/**
 * Fig. 11's inner loop: repeatedly select a qualifying sapling, tail
 * duplicate it (or absorb it directly once it has a single
 * predecessor), until no sapling qualifies or a limit trips.
 */
void
expandWithTailDuplication(ir::Function &fn, const RegionSet &set,
                          Region &tree, const TailDupLimits &limits)
{
    // The selection loop re-scans every exit edge after each
    // duplication, so a refused edge would re-refuse once per round;
    // dedupe on (from, sapling, reason) to report each refusal once.
    std::set<std::tuple<BlockId, BlockId, const char *>> refused;
    auto freshRefusal = [&](BlockId from, BlockId sapling,
                            const char *why) {
        return support::remarksEnabled() &&
               refused.emplace(from, sapling, why).second;
    };

    for (;;) {
        if (tree.pathCount() > limits.path_limit) {
            support::remark(support::RemarkKind::TailDupStopped)
                .block(tree.root())
                .arg("reason", "path-limit")
                .arg("paths", tree.pathCount())
                .arg("cap", limits.path_limit);
            break;
        }
        if (tree.size() >= limits.max_region_blocks) {
            support::remark(support::RemarkKind::TailDupStopped)
                .block(tree.root())
                .arg("reason", "max-blocks")
                .arg("blocks", tree.size())
                .arg("cap", limits.max_region_blocks);
            break;
        }

        // Select the first qualifying exit edge (Fig. 11's "for each
        // sapling ... use this sapling", generalized to edges because
        // a sapling may qualify below one leaf but repeat an original
        // below another). Edges are visited hottest first so the
        // expansion budget extends the frequently executed paths
        // before cold ones, mirroring how trace-based superblock
        // formation spends its duplication.
        auto exits = tree.exits(fn);
        std::stable_sort(exits.begin(), exits.end(),
                         [](const RegionExit &a, const RegionExit &b) {
                             return a.weight > b.weight;
                         });
        BlockId selected = kNoBlock;
        BlockId from = kNoBlock;
        size_t slot = 0;
        for (const RegionExit &exit : exits) {
            if (exit.is_ret || exit.target == kNoBlock)
                continue;
            const BlockId sapling = exit.target;
            if (set.covered(sapling) || tree.contains(sapling))
                continue;
            if (repeatsAlongPath(fn, tree, exit.from, sapling)) {
                if (freshRefusal(exit.from, sapling,
                                 "repeats-along-path")) {
                    support::remark(
                        support::RemarkKind::TailDupRefused)
                        .block(sapling)
                        .arg("root", tree.root())
                        .arg("from", exit.from)
                        .arg("reason", "repeats-along-path");
                }
                continue;
            }
            const size_t merge_count = fn.predsOf(sapling).size();
            const bool is_function_exit =
                fn.block(sapling).successors().empty();
            if (merge_count > limits.merge_limit &&
                !is_function_exit) {
                if (freshRefusal(exit.from, sapling, "merge-limit")) {
                    support::remark(
                        support::RemarkKind::TailDupRefused)
                        .block(sapling)
                        .arg("root", tree.root())
                        .arg("from", exit.from)
                        .arg("reason", "merge-limit")
                        .arg("preds", merge_count)
                        .arg("cap", limits.merge_limit);
                }
                continue;
            }
            // Conservative code-expansion pre-check ("might be
            // exceeded"): absorbing one copy of the sapling must keep
            // the region's op count within the limit relative to its
            // non-duplicated code. A direct absorb of a sapling that
            // is not itself a clone enlarges the base as well.
            const bool will_clone = fn.isMergePoint(sapling);
            const ir::BasicBlock &sap = fn.block(sapling);
            const size_t sapling_ops = sap.ops().size();
            const size_t base_gain =
                (!will_clone && sap.originalId() == sapling)
                    ? sapling_ops
                    : 0;
            const double cur_ops =
                static_cast<double>(tree.totalOps(fn) + sapling_ops);
            const double orig_ops = static_cast<double>(
                originalMemberOps(fn, tree) + base_gain);
            if (orig_ops <= 0.0 ||
                cur_ops > limits.expansion_limit * orig_ops) {
                if (freshRefusal(exit.from, sapling,
                                 "expansion-limit")) {
                    support::remark(
                        support::RemarkKind::TailDupRefused)
                        .block(sapling)
                        .arg("root", tree.root())
                        .arg("from", exit.from)
                        .arg("reason", "expansion-limit")
                        .arg("ops", cur_ops)
                        .arg("base", orig_ops)
                        .arg("cap", limits.expansion_limit);
                }
                continue;
            }
            selected = sapling;
            from = exit.from;
            slot = exit.target_slot;
            break;
        }
        if (selected == kNoBlock) {
            support::remark(support::RemarkKind::TailDupStopped)
                .block(tree.root())
                .arg("reason", "no-candidate");
            break;
        }

        if (fn.isMergePoint(selected)) {
            const BlockId clone = tailDuplicateEdge(fn, from, slot);
            support::remark(support::RemarkKind::TailDuplicated)
                .block(selected)
                .arg("root", tree.root())
                .arg("from", from)
                .arg("clone", clone);
            absorbIntoTree(fn, set, tree, clone, from);
            // The original may have lost its last predecessor.
            if (fn.predsOf(selected).empty())
                orphanSweep(fn, set, selected);
        } else {
            absorbIntoTree(fn, set, tree, selected, from);
        }
    }
}

/** Shared driver for treeform (Fig. 2) / treeform-td (Fig. 11). */
RegionSet
treeformImpl(ir::Function &fn, const TailDupLimits *limits)
{
    RegionSet set;
    std::deque<BlockId> unprocessed = {fn.entry()};

    auto grow_region = [&](BlockId root) {
        Region tree(RegionKind::Treegion, root);
        for (const BlockId succ : fn.block(root).successors()) {
            if (succ != kNoBlock)
                absorbIntoTree(fn, set, tree, succ, root);
        }
        if (limits)
            expandWithTailDuplication(fn, set, tree, *limits);
        if (support::remarksEnabled()) {
            support::remark(support::RemarkKind::RegionFormed)
                .block(root)
                .arg("blocks", tree.size())
                .arg("paths", tree.pathCount())
                .arg("ops", tree.totalOps(fn));
        }
        for (const BlockId sapling : tree.saplings(fn)) {
            if (!set.covered(sapling))
                unprocessed.push_back(sapling);
        }
        set.add(std::move(tree));
    };

    while (!unprocessed.empty()) {
        const BlockId root = unprocessed.front();
        unprocessed.pop_front();
        if (!fn.hasBlock(root) || set.covered(root))
            continue;
        grow_region(root);
    }

    // Robustness: root a region at any block the entry walk missed
    // (unreachable code in hand-written IR).
    fn.forEachBlock([&](const ir::BasicBlock &b) {
        if (!set.covered(b.id()))
            unprocessed.push_back(b.id());
    });
    while (!unprocessed.empty()) {
        const BlockId root = unprocessed.front();
        unprocessed.pop_front();
        if (!fn.hasBlock(root) || set.covered(root))
            continue;
        grow_region(root);
    }
    return set;
}

} // namespace

RegionSet
formTreegions(ir::Function &fn)
{
    return treeformImpl(fn, nullptr);
}

RegionSet
formTreegionsTailDup(ir::Function &fn, const TailDupLimits &limits)
{
    RegionSet set = treeformImpl(fn, &limits);
    return set;
}

} // namespace treegion::region
