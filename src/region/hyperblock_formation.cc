#include "region/formation.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "support/logging.h"

namespace treegion::region {

using ir::BlockId;
using ir::kNoBlock;

namespace {

/**
 * Pick the next block to absorb into @p hyper: an uncovered
 * non-member whose CFG predecessors are all members (keeping the
 * region single-entry and acyclic), whose profile weight clears the
 * selection threshold, and whose absorption respects the block and
 * path limits.
 */
BlockId
selectCandidate(ir::Function &fn, const RegionSet &set,
                const Region &hyper, const HyperblockOptions &options)
{
    const double root_weight = fn.block(hyper.root()).weight();
    for (const RegionExit &exit : hyper.exits(fn)) {
        if (exit.is_ret || exit.target == kNoBlock)
            continue;
        const BlockId cand = exit.target;
        if (hyper.contains(cand) || set.covered(cand))
            continue;
        bool all_preds_inside = true;
        for (const BlockId pred : fn.predsOf(cand)) {
            if (!hyper.contains(pred)) {
                all_preds_inside = false;
                break;
            }
        }
        if (!all_preds_inside)
            continue;
        // Mahlke-style block selection: only include blocks whose
        // execution frequency is comparable to the region's.
        if (fn.block(cand).weight() <
            options.min_weight_ratio * root_weight) {
            continue;
        }
        return cand;
    }
    return kNoBlock;
}

} // namespace

RegionSet
formHyperblocks(ir::Function &fn, const HyperblockOptions &options)
{
    RegionSet set;
    std::deque<BlockId> unprocessed = {fn.entry()};

    auto grow_region = [&](BlockId root) {
        Region hyper(RegionKind::Hyperblock, root);
        while (hyper.size() < options.max_blocks &&
               hyper.pathCount() <= options.path_limit) {
            const BlockId cand =
                selectCandidate(fn, set, hyper, options);
            if (cand == kNoBlock)
                break;
            std::vector<BlockId> parents = fn.predsOf(cand);
            std::sort(parents.begin(), parents.end());
            parents.erase(std::unique(parents.begin(), parents.end()),
                          parents.end());
            hyper.addBlockDag(cand, parents);
        }
        for (const BlockId sapling : hyper.saplings(fn)) {
            if (!set.covered(sapling))
                unprocessed.push_back(sapling);
        }
        set.add(std::move(hyper));
    };

    while (!unprocessed.empty()) {
        const BlockId root = unprocessed.front();
        unprocessed.pop_front();
        if (!fn.hasBlock(root) || set.covered(root))
            continue;
        grow_region(root);
    }
    fn.forEachBlock([&](const ir::BasicBlock &b) {
        if (!set.covered(b.id()))
            unprocessed.push_back(b.id());
    });
    while (!unprocessed.empty()) {
        const BlockId root = unprocessed.front();
        unprocessed.pop_front();
        if (!fn.hasBlock(root) || set.covered(root))
            continue;
        grow_region(root);
    }
    return set;
}

} // namespace treegion::region
