/**
 * @file
 * Scheduling regions: single-entry trees of basic blocks.
 *
 * A Region is a tree-shaped subgraph of the CFG rooted at a single
 * entry block. Treegions are general trees; simple linear regions,
 * superblocks and single basic blocks are degenerate (unary) trees,
 * which lets one scheduler handle every region type the paper
 * compares.
 *
 * Within a region every non-root block has exactly one predecessor
 * (its tree parent), so a terminator target edge is internal exactly
 * when the target's tree parent is the branching block; every other
 * target edge (including branches back to the region's own root) is a
 * region exit.
 */

#ifndef TREEGION_REGION_REGION_H
#define TREEGION_REGION_REGION_H

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace treegion::region {

/** The kinds of regions the paper evaluates (plus its future work). */
enum class RegionKind {
    BasicBlock,  ///< one block per region
    Slr,         ///< simple linear region (no tail duplication)
    Superblock,  ///< profile-guided trace with tail duplication
    Treegion,    ///< decision-tree region
    Hyperblock,  ///< single-entry acyclic DAG with internal merges,
                 ///< if-converted via predication (the paper's planned
                 ///< comparison point)
};

/** @return human-readable name of @p kind. */
std::string regionKindName(RegionKind kind);

/** An exit edge of a region. */
struct RegionExit
{
    ir::BlockId from;      ///< region block the edge leaves
    size_t target_slot;    ///< index into the terminator's targets
    ir::BlockId target;    ///< destination block (kNoBlock for RET)
    bool is_ret;           ///< true when the "exit" is a RET
    double weight;         ///< profile weight of this exit edge
};

/** A single-entry tree-shaped scheduling region. */
class Region
{
  public:
    /** Construct a region of @p kind rooted at @p root. */
    Region(RegionKind kind, ir::BlockId root);

    /** @return the region kind. */
    RegionKind kind() const { return kind_; }

    /** @return the root block id. */
    ir::BlockId root() const { return root_; }

    /** @return member blocks in tree preorder (root first). */
    const std::vector<ir::BlockId> &blocks() const { return blocks_; }

    /** @return true when @p id is a member. */
    bool contains(ir::BlockId id) const;

    /** @return the tree parent of member @p id (kNoBlock for root). */
    ir::BlockId parentOf(ir::BlockId id) const;

    /** @return the tree children of member @p id, in preorder. */
    const std::vector<ir::BlockId> &childrenOf(ir::BlockId id) const;

    /**
     * Add @p id to the region as a child of @p parent (kNoBlock for
     * the root itself). Asserts tree shape.
     */
    void addBlock(ir::BlockId id, ir::BlockId parent);

    /**
     * Add @p id with several in-region predecessors (Hyperblock kind
     * only). @p parents must all be members; children lists gain
     * @p id under each parent, and parentOf reports the first.
     */
    void addBlockDag(ir::BlockId id,
                     const std::vector<ir::BlockId> &parents);

    /** @return number of member blocks. */
    size_t size() const { return blocks_.size(); }

    /** @return number of root-to-leaf paths (leaf count). */
    size_t pathCount() const;

    /** @return depth of @p id below the root (root = 0). */
    size_t depthOf(ir::BlockId id) const;

    /**
     * Is the terminator target edge (@p from, @p slot) internal to
     * the region tree?
     */
    bool isInternalEdge(ir::Function &fn, ir::BlockId from,
                        size_t slot) const;

    /**
     * Enumerate every exit edge of the region, in block-preorder and
     * target-slot order. RET terminators produce a RegionExit with
     * is_ret = true.
     */
    std::vector<RegionExit> exits(ir::Function &fn) const;

    /**
     * External successor blocks ("saplings"): distinct targets of
     * exit edges, in discovery order, excluding RET pseudo-exits.
     */
    std::vector<ir::BlockId> saplings(ir::Function &fn) const;

    /** @return number of exits in the subtree rooted at @p id. */
    size_t exitsInSubtree(ir::Function &fn, ir::BlockId id) const;

    /** Total op count over member blocks. */
    size_t totalOps(const ir::Function &fn) const;

  private:
    RegionKind kind_;
    ir::BlockId root_;
    std::vector<ir::BlockId> blocks_;
    std::unordered_map<ir::BlockId, ir::BlockId> parent_;
    std::unordered_map<ir::BlockId, std::vector<ir::BlockId>> children_;
};

/** A partition of a function into regions. */
class RegionSet
{
  public:
    /** @return all regions, in formation order. */
    std::vector<Region> &regions() { return regions_; }
    const std::vector<Region> &regions() const { return regions_; }

    /** Append @p r and index its blocks. */
    void add(Region r);

    /** @return index of the region containing @p id, or npos. */
    size_t regionIndexOf(ir::BlockId id) const;

    /** @return true when @p id is in some region. */
    bool covered(ir::BlockId id) const;

    /** No-region sentinel for regionIndexOf. */
    static constexpr size_t npos = static_cast<size_t>(-1);

    /**
     * Check the partition invariant: every live block of @p fn is in
     * exactly one region, and each region is a well-formed tree
     * (non-root members have their tree parent as their only CFG
     * predecessor).
     *
     * @return problems found (empty when valid)
     */
    std::vector<std::string> validate(ir::Function &fn) const;

  private:
    std::vector<Region> regions_;
    std::unordered_map<ir::BlockId, size_t> block_to_region_;
};

} // namespace treegion::region

#endif // TREEGION_REGION_REGION_H
