#include "region/graphviz.h"

#include <ostream>

#include "support/string_utils.h"

namespace treegion::region {

using support::strprintf;

namespace {

/** A small qualitative palette for region clusters. */
const char *kColors[] = {"#cfe8ff", "#ffe3c2", "#d8f2d0", "#f3d1f0",
                         "#fff3b0", "#d9d7f1", "#ffd4d4", "#ccf2f0"};

std::string
escape(const std::string &text)
{
    std::string out;
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

void
writeDot(std::ostream &os, ir::Function &fn, const RegionSet &set,
         const GraphvizOptions &options)
{
    os << "digraph cfg {\n";
    os << "  node [shape=box, fontname=\"monospace\"];\n";
    if (!options.title.empty())
        os << "  label=\"" << escape(options.title) << "\";\n";

    for (size_t i = 0; i < set.regions().size(); ++i) {
        const Region &r = set.regions()[i];
        os << "  subgraph cluster_" << i << " {\n";
        os << "    style=filled;\n    color=\""
           << kColors[i % (sizeof(kColors) / sizeof(kColors[0]))]
           << "\";\n";
        // A heavy border makes the region (treegion) boundary legible
        // even when the fill colors of adjacent clusters are close.
        os << "    penwidth=2.5;\n";
        os << "    label=\"" << regionKindName(r.kind()) << " "
           << i << " (root bb" << r.root() << ")\";\n";
        for (const ir::BlockId id : r.blocks()) {
            const bool dup = fn.block(id).originalId() != id;
            os << "    bb" << id << " [label=\"bb" << id;
            if (dup)
                os << " (dup of bb" << fn.block(id).originalId()
                   << ")";
            if (options.show_weights) {
                os << strprintf(" (w=%.6g)",
                                fn.block(id).weight());
            }
            if (options.show_ops) {
                for (const ir::Op &op : fn.block(id).ops())
                    os << "\\l" << escape(op.str());
                os << "\\l";
            }
            os << '"';
            if (dup) {
                // Tail-duplicated clones stand out from the original
                // members of every region.
                os << ", style=\"filled,dashed\","
                      " fillcolor=\"#ffe9a8\"";
            }
            os << "];\n";
        }
        os << "  }\n";
    }

    fn.forEachBlock([&](const ir::BasicBlock &b) {
        const auto succs = b.successors();
        for (size_t slot = 0; slot < succs.size(); ++slot) {
            if (succs[slot] == ir::kNoBlock)
                continue;
            os << "  bb" << b.id() << " -> bb" << succs[slot];
            if (options.show_weights &&
                slot < b.edgeWeights().size()) {
                os << strprintf(" [label=\"%.6g\"]",
                                b.edgeWeights()[slot]);
            }
            os << ";\n";
        }
    });
    os << "}\n";
}

} // namespace treegion::region
