#include "region/formation.h"

#include <algorithm>

#include "support/logging.h"

namespace treegion::region {

using ir::BlockId;
using ir::kNoBlock;

namespace {

/** Best successor slot by edge weight (ties: first slot). */
bool
bestSlot(const ir::BasicBlock &b, size_t &slot_out, double &weight_out)
{
    const auto &targets = b.terminator().targets;
    if (targets.empty())
        return false;
    const auto &weights = b.edgeWeights();
    size_t best = 0;
    double best_w = -1.0;
    for (size_t i = 0; i < targets.size(); ++i) {
        const double w = i < weights.size() ? weights[i] : 0.0;
        if (w > best_w) {
            best_w = w;
            best = i;
        }
    }
    slot_out = best;
    weight_out = best_w;
    return true;
}

/** Is the original of @p id already in @p region (anti-unrolling)? */
bool
originalInRegion(ir::Function &fn, const Region &region, BlockId id)
{
    const BlockId orig = fn.block(id).originalId();
    for (const BlockId member : region.blocks()) {
        if (fn.block(member).originalId() == orig)
            return true;
    }
    return false;
}

} // namespace

RegionSet
formSuperblocks(ir::Function &fn, const SuperblockOptions &options)
{
    RegionSet set;

    // Seed selection: the hottest not-yet-covered block. Tail
    // duplication creates clones during formation; they join the
    // candidate pool automatically.
    auto next_seed = [&]() {
        BlockId best = kNoBlock;
        double best_w = -1.0;
        fn.forEachBlock([&](const ir::BasicBlock &b) {
            if (set.covered(b.id()))
                return;
            if (b.weight() > best_w) {
                best_w = b.weight();
                best = b.id();
            }
        });
        return best;
    };

    for (;;) {
        const BlockId seed = next_seed();
        if (seed == kNoBlock)
            break;

        Region sb(RegionKind::Superblock, seed);
        BlockId cur = seed;
        while (sb.size() < options.max_blocks) {
            size_t slot;
            double edge_w;
            if (!bestSlot(fn.block(cur), slot, edge_w))
                break;
            const BlockId next = fn.block(cur).terminator().targets[slot];
            if (next == kNoBlock || next == fn.entry() ||
                set.covered(next) || sb.contains(next) ||
                originalInRegion(fn, sb, next)) {
                break;
            }
            if (fn.isMergePoint(next)) {
                // Duplicating code that never runs is pure waste;
                // cold traces grow like SLRs instead (stop at the
                // merge point). Lukewarm edges below the trace-
                // selection threshold also stop growth.
                if (edge_w <= options.cold_edge_weight)
                    break;
                const double block_w = fn.block(cur).weight();
                if (block_w > 0.0 &&
                    edge_w < options.min_edge_prob * block_w) {
                    break;
                }
                // Hwu/Chang mutual-most-likely: the merge point joins
                // the trace only when this edge is its strongest
                // incoming edge (otherwise the trace through the
                // dominant predecessor gets it).
                if (options.mutual_most_likely) {
                    double in_flow = 0.0;
                    for (const BlockId pred : fn.predsOf(next)) {
                        const auto &pt = fn.block(pred).terminator();
                        const auto &pw = fn.block(pred).edgeWeights();
                        for (size_t s = 0; s < pt.targets.size(); ++s) {
                            if (pt.targets[s] == next &&
                                s < pw.size() &&
                                !(pred == cur && s == slot)) {
                                in_flow = std::max(in_flow, pw[s]);
                            }
                        }
                    }
                    if (edge_w < in_flow)
                        break;
                }
                const BlockId clone = tailDuplicateEdge(fn, cur, slot);
                sb.addBlock(clone, cur);
                if (fn.predsOf(next).empty())
                    orphanSweep(fn, set, next);
                cur = clone;
            } else {
                sb.addBlock(next, cur);
                cur = next;
            }
        }
        set.add(std::move(sb));
    }
    return set;
}

} // namespace treegion::region
