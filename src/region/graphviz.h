/**
 * @file
 * Graphviz (dot) export of a CFG with its region partition — each
 * region becomes a colored cluster, edges carry profile weights.
 * Handy for papers, debugging, and the examples.
 */

#ifndef TREEGION_REGION_GRAPHVIZ_H
#define TREEGION_REGION_GRAPHVIZ_H

#include <iosfwd>
#include <string>

#include "region/region.h"

namespace treegion::region {

/** Export options. */
struct GraphvizOptions
{
    bool show_ops = false;        ///< list each block's ops in its node
    bool show_weights = true;     ///< annotate edges with profile flow
    std::string title;            ///< graph label
};

/**
 * Write @p fn with the partition @p set as a dot graph to @p os.
 */
void writeDot(std::ostream &os, ir::Function &fn, const RegionSet &set,
              const GraphvizOptions &options = {});

} // namespace treegion::region

#endif // TREEGION_REGION_GRAPHVIZ_H
