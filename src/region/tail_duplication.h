/**
 * @file
 * Tail-duplication primitives shared by treegion and superblock
 * formation.
 *
 * Tail duplication clones a merge-point block for one specific
 * incoming edge so the clone has a single predecessor and can be
 * absorbed into a region. Profile weights are split conservatively:
 * the clone receives the redirected edge's flow and the original's
 * weight (and outgoing edge weights) shrink proportionally, keeping
 * the profile flow-conserving.
 */

#ifndef TREEGION_REGION_TAIL_DUPLICATION_H
#define TREEGION_REGION_TAIL_DUPLICATION_H

#include <cstddef>

#include "ir/function.h"

namespace treegion::region {

class RegionSet;

/** Limits governing Fig. 11 treegion formation with tail duplication. */
struct TailDupLimits
{
    /**
     * Maximum ratio of treegion ops to the ops of the distinct
     * original blocks it represents (the paper evaluates 2.0 and
     * 3.0).
     */
    double expansion_limit = 2.0;

    /** Maximum number of root-to-leaf paths per treegion (paper: 20). */
    size_t path_limit = 20;

    /**
     * Maximum incoming-edge count of a sapling eligible for
     * duplication (paper: 4). Merge points with no CFG successors
     * (function exits) are exempt.
     */
    size_t merge_limit = 4;

    /** Safety cap on blocks per region. */
    size_t max_region_blocks = 512;
};

/**
 * Clone @p sapling for the edge at @p slot of @p pred's terminator,
 * retarget that edge to the clone, and split profile weights.
 *
 * @param fn the function (mutated)
 * @param pred source block of the edge being redirected
 * @param slot index into @p pred's terminator targets
 * @return the clone's block id
 */
ir::BlockId tailDuplicateEdge(ir::Function &fn, ir::BlockId pred,
                              size_t slot);

/**
 * Move @p flow units of profile weight from @p from onto the clone
 * @p to, scaling both blocks' outgoing edge weights so flow stays
 * conserved. Exposed separately for superblock formation, which
 * redirects several edges onto one clone.
 */
void transferProfileFlow(ir::Function &fn, ir::BlockId from,
                         ir::BlockId to, double flow);

/**
 * Remove @p start if tail duplication orphaned it (no predecessors
 * left), along with any uncovered blocks transitively orphaned by the
 * removal. Blocks inside a region are never removed: a region
 * member's sole predecessor is its tree parent, which tail
 * duplication never retargets.
 */
void orphanSweep(ir::Function &fn, const RegionSet &set,
                 ir::BlockId start);

} // namespace treegion::region

#endif // TREEGION_REGION_TAIL_DUPLICATION_H
