#include "region/region.h"

#include <algorithm>

#include "support/logging.h"
#include "support/string_utils.h"

namespace treegion::region {

using ir::BlockId;
using ir::kNoBlock;

std::string
regionKindName(RegionKind kind)
{
    switch (kind) {
      case RegionKind::BasicBlock: return "bb";
      case RegionKind::Slr: return "slr";
      case RegionKind::Superblock: return "sb";
      case RegionKind::Treegion: return "tree";
      case RegionKind::Hyperblock: return "hyper";
    }
    TG_PANIC("bad RegionKind");
}

Region::Region(RegionKind kind, BlockId root)
    : kind_(kind), root_(root)
{
    addBlock(root, kNoBlock);
}

bool
Region::contains(BlockId id) const
{
    return parent_.count(id) != 0;
}

BlockId
Region::parentOf(BlockId id) const
{
    auto it = parent_.find(id);
    TG_ASSERT(it != parent_.end());
    return it->second;
}

const std::vector<BlockId> &
Region::childrenOf(BlockId id) const
{
    static const std::vector<BlockId> kEmpty;
    auto it = children_.find(id);
    return it == children_.end() ? kEmpty : it->second;
}

void
Region::addBlock(BlockId id, BlockId parent)
{
    TG_ASSERT(!contains(id));
    if (parent == kNoBlock) {
        TG_ASSERT(blocks_.empty() && id == root_);
    } else {
        TG_ASSERT(contains(parent));
        children_[parent].push_back(id);
    }
    parent_[id] = parent;
    blocks_.push_back(id);
}

void
Region::addBlockDag(BlockId id, const std::vector<BlockId> &parents)
{
    TG_ASSERT(kind_ == RegionKind::Hyperblock);
    TG_ASSERT(!contains(id) && !parents.empty());
    for (const BlockId parent : parents) {
        TG_ASSERT(contains(parent));
        children_[parent].push_back(id);
    }
    parent_[id] = parents.front();
    blocks_.push_back(id);
}

size_t
Region::pathCount() const
{
    if (kind_ != RegionKind::Hyperblock) {
        size_t leaves = 0;
        for (const BlockId id : blocks_) {
            if (childrenOf(id).empty())
                ++leaves;
        }
        return leaves;
    }
    // DAG: count distinct root-to-leaf paths (memoized; the region is
    // acyclic by construction). Saturate to avoid overflow.
    std::unordered_map<BlockId, size_t> memo;
    auto count = [&](auto &&self, BlockId id) -> size_t {
        auto it = memo.find(id);
        if (it != memo.end())
            return it->second;
        const auto &kids = childrenOf(id);
        size_t total = 0;
        if (kids.empty()) {
            total = 1;
        } else {
            for (const BlockId child : kids) {
                total += self(self, child);
                if (total > (size_t{1} << 30))
                    total = size_t{1} << 30;
            }
        }
        memo[id] = total;
        return total;
    };
    return count(count, root_);
}

size_t
Region::depthOf(BlockId id) const
{
    size_t depth = 0;
    while (parentOf(id) != kNoBlock) {
        id = parentOf(id);
        ++depth;
    }
    return depth;
}

bool
Region::isInternalEdge(ir::Function &fn, BlockId from, size_t slot) const
{
    const auto &targets = fn.block(from).terminator().targets;
    TG_ASSERT(slot < targets.size());
    const BlockId target = targets[slot];
    if (target == kNoBlock || !contains(target) || target == root_)
        return false;
    if (kind_ == RegionKind::Hyperblock) {
        // Every edge to a non-root member is internal: formation only
        // absorbs blocks whose predecessors are all inside.
        return true;
    }
    return parentOf(target) == from;
}

std::vector<RegionExit>
Region::exits(ir::Function &fn) const
{
    std::vector<RegionExit> out;
    for (const BlockId id : blocks_) {
        const ir::Op &term = fn.block(id).terminator();
        const auto &weights = fn.block(id).edgeWeights();
        if (term.opcode == ir::Opcode::RET) {
            out.push_back({id, 0, kNoBlock, true,
                           fn.block(id).weight()});
            continue;
        }
        for (size_t slot = 0; slot < term.targets.size(); ++slot) {
            if (isInternalEdge(fn, id, slot))
                continue;
            const double w =
                slot < weights.size() ? weights[slot] : 0.0;
            out.push_back({id, slot, term.targets[slot], false, w});
        }
    }
    return out;
}

std::vector<BlockId>
Region::saplings(ir::Function &fn) const
{
    std::vector<BlockId> out;
    for (const RegionExit &exit : exits(fn)) {
        if (exit.is_ret || exit.target == kNoBlock)
            continue;
        if (std::find(out.begin(), out.end(), exit.target) == out.end())
            out.push_back(exit.target);
    }
    return out;
}

size_t
Region::exitsInSubtree(ir::Function &fn, BlockId id) const
{
    size_t count = 0;
    const ir::Op &term = fn.block(id).terminator();
    if (term.opcode == ir::Opcode::RET) {
        count += 1;
    } else {
        for (size_t slot = 0; slot < term.targets.size(); ++slot) {
            if (!isInternalEdge(fn, id, slot))
                ++count;
        }
    }
    for (const BlockId child : childrenOf(id))
        count += exitsInSubtree(fn, child);
    return count;
}

size_t
Region::totalOps(const ir::Function &fn) const
{
    size_t n = 0;
    for (const BlockId id : blocks_)
        n += fn.block(id).ops().size();
    return n;
}

void
RegionSet::add(Region r)
{
    const size_t idx = regions_.size();
    for (const BlockId id : r.blocks()) {
        TG_ASSERT(!covered(id));
        block_to_region_[id] = idx;
    }
    regions_.push_back(std::move(r));
}

size_t
RegionSet::regionIndexOf(BlockId id) const
{
    auto it = block_to_region_.find(id);
    return it == block_to_region_.end() ? npos : it->second;
}

bool
RegionSet::covered(BlockId id) const
{
    return block_to_region_.count(id) != 0;
}

std::vector<std::string>
RegionSet::validate(ir::Function &fn) const
{
    using support::strprintf;
    std::vector<std::string> problems;

    // Every live block is covered exactly once (uniqueness is
    // enforced structurally by add()).
    fn.forEachBlock([&](const ir::BasicBlock &b) {
        if (!covered(b.id()))
            problems.push_back(
                strprintf("bb%u not covered by any region", b.id()));
    });

    for (size_t i = 0; i < regions_.size(); ++i) {
        const Region &r = regions_[i];
        for (const BlockId id : r.blocks()) {
            if (!fn.hasBlock(id)) {
                problems.push_back(strprintf(
                    "region %zu contains dead block bb%u", i, id));
                continue;
            }
            const BlockId parent = r.parentOf(id);
            if (id == r.root()) {
                if (parent != kNoBlock)
                    problems.push_back(strprintf(
                        "region %zu root bb%u has a parent", i, id));
                continue;
            }
            if (r.kind() == RegionKind::Hyperblock) {
                // Non-root members may merge, but every predecessor
                // must be inside the region (single entry).
                for (const BlockId pred : fn.predsOf(id)) {
                    if (!r.contains(pred)) {
                        problems.push_back(strprintf(
                            "region %zu hyperblock member bb%u has an "
                            "outside predecessor bb%u", i, id, pred));
                    }
                }
                continue;
            }
            // Non-root members must have the tree parent as their
            // sole CFG predecessor (no internal merge points).
            const auto &preds = fn.predsOf(id);
            if (preds.size() != 1 || preds[0] != parent) {
                problems.push_back(strprintf(
                    "region %zu member bb%u is a merge point or has "
                    "wrong parent", i, id));
            }
        }
    }
    return problems;
}

} // namespace treegion::region
