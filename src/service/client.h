/**
 * @file
 * Blocking client for the treegion compile service.
 *
 * One Client is one connection; call() frames a Request, waits for
 * the Response, and may be called any number of times (the protocol
 * is strictly request/response per connection). Not thread-safe —
 * use one Client per thread, which is also how the throughput bench
 * models N concurrent clients.
 */

#ifndef TREEGION_SERVICE_CLIENT_H
#define TREEGION_SERVICE_CLIENT_H

#include <memory>
#include <string>

#include "service/protocol.h"

namespace treegion::service {

/** A connected compile-service client. */
class Client
{
  public:
    /**
     * Connect to @p address: "unix:<path>", a bare absolute path
     * (unix socket), or "host:port" (TCP).
     * @return nullptr and set @p error on failure.
     */
    static std::unique_ptr<Client>
    connect(const std::string &address, std::string *error);

    /** Connect to a Unix-domain socket at @p path. */
    static std::unique_ptr<Client>
    connectUnix(const std::string &path, std::string *error);

    /** Connect over TCP. */
    static std::unique_ptr<Client>
    connectTcp(const std::string &host, int port, std::string *error);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Send @p req and block for the response.
     * @return false and set @p error on a transport failure (the
     * server answering "rejected" etc. is still a true return — look
     * at @p resp->status).
     *
     * Tracing: when span collection is enabled (support/spans.h) the
     * call is recorded as a "call" span — a child of the ambient
     * context when one is installed, else the root of a fresh trace —
     * and, when sampled, the trace context is injected into the
     * request's `trace-id`/`parent-span` headers so the server's
     * spans join the same tree. Failed attempts are recorded too
     * (status arg "transport-error"), which is how merged traces
     * show the cost of retries.
     */
    bool call(const Request &req, Response *resp, std::string *error);

    /**
     * Estimate this server's clock offset by timing one ping against
     * the `time-us` wall clock it reports, and record the estimate as
     * a root "clock-sync" span (args: member, offset_us, rtt_us) for
     * `treegion-report --trace-merge` to align files with. No-op
     * (returning true) when span collection is disabled or the
     * server predates `time-us`.
     */
    bool syncClock(std::string *error);

    /** The address this client connected to (as given). */
    const std::string &address() const { return address_; }

    /** Frame size limit applied to responses (server default). */
    size_t max_frame_bytes = kDefaultMaxFrameBytes;

  private:
    Client(int fd, std::string address)
        : fd_(fd), address_(std::move(address))
    {
    }

    int fd_;
    std::string address_;
};

} // namespace treegion::service

#endif // TREEGION_SERVICE_CLIENT_H
