#include "service/cache.h"

#include <sstream>
#include <utility>

#include "ir/printer.h"
#include "support/hash.h"
#include "support/string_utils.h"

namespace treegion::service {

std::string
CacheKey::str() const
{
    return support::strprintf("%016llx%016llx",
                              static_cast<unsigned long long>(hi),
                              static_cast<unsigned long long>(lo));
}

bool
parseCacheKeyHex(const std::string &hex, CacheKey *out)
{
    if (hex.size() != 32)
        return false;
    uint64_t words[2] = {0, 0};
    for (size_t i = 0; i < 32; ++i) {
        const char c = hex[i];
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            digit = static_cast<uint64_t>(c - 'A') + 10;
        else
            return false;
        words[i / 16] = (words[i / 16] << 4) | digit;
    }
    out->hi = words[0];
    out->lo = words[1];
    return true;
}

std::string
canonicalFunctionText(const ir::Function &fn)
{
    std::ostringstream os;
    ir::printFunction(os, fn);
    return os.str();
}

CacheKey
makeCacheKey(const std::string &canonical_fn,
             const std::string &config_fingerprint)
{
    // Two independent FNV-1a streams over "<fn> \x1f <config>"; the
    // separator keeps (a, b) and (a + prefix-of-b, rest) distinct.
    CacheKey key;
    key.lo = support::fnv1a64(
        config_fingerprint,
        support::fnv1a64("\x1f", support::fnv1a64(canonical_fn)));
    key.hi = support::fnv1a64(
        config_fingerprint,
        support::fnv1a64(
            "\x1f", support::fnv1a64(canonical_fn,
                                     support::kFnvOffsetBasisAlt)));
    return key;
}

std::optional<std::string>
CompileCache::lookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++counters_.misses;
        return std::nullopt;
    }
    ++counters_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->payload;
}

void
CompileCache::insert(const CacheKey &key, std::string payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (payload.size() > max_bytes_)
        return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        bytes_ -= it->second->payload.size();
        bytes_ += payload.size();
        it->second->payload = std::move(payload);
        lru_.splice(lru_.begin(), lru_, it->second);
        evictUntilFits(0);
        return;
    }
    evictUntilFits(payload.size());
    lru_.push_front(Entry{key, std::move(payload)});
    bytes_ += lru_.front().payload.size();
    index_.emplace(key, lru_.begin());
    ++counters_.insertions;
}

void
CompileCache::evictUntilFits(size_t incoming_bytes)
{
    while (!lru_.empty() && bytes_ + incoming_bytes > max_bytes_) {
        const Entry &victim = lru_.back();
        bytes_ -= victim.payload.size();
        index_.erase(victim.key);
        lru_.pop_back();
        ++counters_.evictions;
    }
}

CompileCache::Stats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = counters_;
    out.bytes = bytes_;
    out.entries = lru_.size();
    return out;
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    bytes_ = 0;
}

} // namespace treegion::service
