/**
 * @file
 * Wire protocol of the treegion compile service.
 *
 * Transport: a stream socket (Unix-domain or TCP). Each message is
 * one frame: a 4-byte big-endian payload length followed by that
 * many payload bytes. Frames flow strictly request/response per
 * connection; a connection serves any number of requests.
 *
 * Payloads are text: a first line naming the message kind
 * ("treegion-req/1" / "treegion-resp/1"), then "key: value" header
 * lines, a blank line, and an optional body. Requests carry a .tir
 * module as the body; compile responses carry the result report.
 * Unknown header keys are ignored, so old clients keep working
 * against newer servers.
 *
 * For zero-dependency observability the server also answers plain
 * HTTP: a connection whose first bytes are "GET " is served one
 * HTTP/1.0 response (the /stats JSON) and closed, so
 * `curl --unix-socket <sock> http://x/stats` works against the same
 * listener the binary protocol uses.
 */

#ifndef TREEGION_SERVICE_PROTOCOL_H
#define TREEGION_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>

namespace treegion::service {

/** Frame payloads above this are rejected by default (4 MiB). */
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

/** Outcome of reading one frame off a connection. */
enum class FrameStatus {
    Ok,        ///< payload filled in
    Closed,    ///< clean EOF before any frame byte
    TooLarge,  ///< length prefix exceeds the frame limit
    Http,      ///< connection opened with an HTTP GET instead
    Error,     ///< I/O error or truncated frame
};

/**
 * Read one length-prefixed frame from @p fd into @p payload.
 * Detects HTTP: when the first four bytes are "GET ", the request
 * line and headers are consumed (up to a sane bound) and
 * @p http_target receives the request target (e.g. "/stats").
 *
 * @param fd connected stream socket
 * @param payload receives the frame payload on Ok
 * @param max_bytes frame size limit
 * @param error human-readable detail on TooLarge/Error
 * @param http_target HTTP request target on Http (may be null)
 */
FrameStatus readFrame(int fd, std::string *payload, size_t max_bytes,
                      std::string *error,
                      std::string *http_target = nullptr);

/** Write @p payload as one frame. @return false on I/O error. */
bool writeFrame(int fd, const std::string &payload,
                std::string *error);

/** A compile-service request. */
struct Request
{
    /** "compile" | "stats" | "ping" | "fill" (peer cache-fill). */
    std::string verb = "compile";
    /**
     * Cache key (CacheKey::str() hex) a "fill" carries: the body is
     * the compiled result a peer replica produced for a key this
     * replica owns on the cluster ring, offered for insertion.
     */
    std::string fill_key;
    /** encodePipelineOptions() line; empty = server defaults. */
    std::string options;
    /** Function to compile; empty = the module's first function. */
    std::string function;
    /** Queue deadline in milliseconds; 0 = no deadline. */
    int64_t deadline_ms = 0;
    /** Echo the full region schedules in the response body. */
    bool want_schedule = false;
    /** Bypass the compile cache (no lookup, no insert). */
    bool no_cache = false;
    /** Re-profile on seeded inputs before compiling. */
    bool profile = true;
    uint64_t profile_seed = 42;
    int profile_runs = 20;
    /**
     * Distributed-tracing context (support/spans.h), forwarded as
     * `trace-id` / `parent-span` headers when non-empty: the 32-hex
     * trace id this request belongs to and the 16-hex id of the
     * caller's span. Old servers ignore the headers (unknown keys
     * are skipped); trace fields are deliberately NOT part of
     * configFingerprint(), so tracing never perturbs cache keys.
     */
    std::string trace_id;
    std::string parent_span;
    /** The .tir module (body). Required for "compile". */
    std::string module_text;

    /**
     * The request fields that shape the response body, rendered
     * canonically — the configuration half of the cache key.
     */
    std::string configFingerprint() const;
};

/** Render @p req as a frame payload. */
std::string encodeRequest(const Request &req);

/** Parse a request payload. @return false and set @p error. */
bool parseRequest(const std::string &payload, Request &out,
                  std::string *error);

/** Response status strings (the protocol sends them verbatim). */
namespace status {
inline constexpr const char *kOk = "ok";
inline constexpr const char *kRejected = "rejected";  ///< backpressure
inline constexpr const char *kDeadline = "deadline";  ///< expired queued
inline constexpr const char *kShuttingDown = "shutting-down";
inline constexpr const char *kError = "error";  ///< bad request
} // namespace status

/** A compile-service response. */
struct Response
{
    std::string status = status::kOk;
    std::string error;           ///< detail when status != ok
    int64_t retry_after_ms = 0;  ///< hint when rejected
    bool cached = false;         ///< body replayed from the cache
    double compile_ms = 0.0;     ///< server-side pipeline wall time
    /**
     * Server wall clock (microseconds since the Unix epoch) sampled
     * while answering — non-zero on "ping" responses. Clients use it
     * to estimate the clock offset to each replica (NTP-style: the
     * server time is compared against the midpoint of the request's
     * send/receive times), which is how `treegion-report
     * --trace-merge` aligns span files from different hosts.
     */
    int64_t server_time_us = 0;
    /** Result report ("compile"), stats JSON ("stats"), or empty. */
    std::string body;
};

/** Render @p resp as a frame payload. */
std::string encodeResponse(const Response &resp);

/** Parse a response payload. @return false and set @p error. */
bool parseResponse(const std::string &payload, Response &out,
                   std::string *error);

} // namespace treegion::service

#endif // TREEGION_SERVICE_PROTOCOL_H
