/**
 * @file
 * treegiond's engine: a persistent compile server.
 *
 * One accept thread multiplexes the Unix-domain and TCP listeners
 * plus a self-pipe (so requestStop() is safe to call from a signal
 * handler). Each connection gets a thread that reads frames and
 * answers them; compile work itself is sharded over the shared
 * support::ThreadPool, so a connection thread is just a parked
 * future while the pool compiles. Every compilation runs on a
 * private clone (runPipelineOnClone) — tail-duplicating schemes
 * mutate the function they compile, so shared state never does.
 *
 * Robustness model:
 *  - admission control: at most queue_limit requests may be admitted
 *    (queued + compiling) at once; beyond that the server answers
 *    "rejected" with a retry-after hint instead of growing an
 *    unbounded queue;
 *  - per-request deadlines: a request that waited in the queue past
 *    its deadline-ms is answered "deadline" without compiling —
 *    stale work is cancelled, not executed;
 *  - per-connection limits: at most max_connections concurrent
 *    connections; extra ones get one "rejected" response and are
 *    closed;
 *  - graceful drain: requestStop() (SIGTERM) closes the listeners,
 *    answers "shutting-down" to new requests on live connections,
 *    finishes everything already admitted, then flushes metrics (a
 *    JSON snapshot and one Chrome trace per drain).
 *
 * Results are content-addressed in a CompileCache; with verify_hits
 * (default on in debug builds) every hit is recompiled and asserted
 * bit-identical to the cached bytes, enforcing the determinism
 * invariant end to end.
 */

#ifndef TREEGION_SERVICE_SERVER_H
#define TREEGION_SERVICE_SERVER_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/protocol.h"
#include "support/metrics.h"
#include "support/thread_pool.h"

namespace treegion::service {

/** Everything configurable about a Server. */
struct ServerOptions
{
    /** Unix-domain socket path; empty = no unix listener. */
    std::string unix_path;

    /** TCP port; -1 = no TCP listener, 0 = pick an ephemeral port. */
    int tcp_port = -1;

    /** TCP bind address. */
    std::string tcp_host = "127.0.0.1";

    /** Compile pool workers; 0 = one per hardware thread. */
    size_t threads = 0;

    /** Max admitted (queued + compiling) compile requests. */
    size_t queue_limit = 64;

    /** Max concurrent connections. */
    size_t max_connections = 64;

    /** Frame size limit (oversized requests are rejected). */
    size_t max_frame_bytes = kDefaultMaxFrameBytes;

    /** Compile cache payload budget; 0 disables the cache. */
    size_t cache_bytes = 64u << 20;

    /** Recompile on every cache hit and assert bit-identity. */
#ifndef NDEBUG
    bool verify_hits = true;
#else
    bool verify_hits = false;
#endif

    /** Write the metrics JSON here on drain; empty = don't. */
    std::string metrics_path;

    /** Write a Chrome trace here on drain; empty = tracing off. */
    std::string trace_path;

    /**
     * Test hook: hold every compile request in the queue for this
     * long before it is considered for execution. Makes deadline and
     * backpressure behavior deterministic in tests and CI.
     */
    int64_t debug_queue_delay_ms = 0;
};

/** A running compile server (see the file header for the model). */
class Server
{
  public:
    explicit Server(ServerOptions options);

    /** Drains and stops if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the configured listeners and start accepting.
     * @return false and set @p error on bind/listen failure.
     */
    bool start(std::string *error);

    /**
     * Begin a graceful drain. Async-signal-safe: just an atomic
     * store and a pipe write, so SIGTERM handlers may call it.
     */
    void requestStop();

    /** Block until the drain completes and every thread is joined. */
    void waitUntilStopped();

    /** @return the TCP port actually bound (after start). */
    int tcpPort() const { return tcp_port_; }

    /** @return the live metrics registry. */
    support::MetricsRegistry &metrics() { return metrics_; }

    /**
     * @return the /stats JSON: the metrics registry plus cache and
     * configuration gauges, one consistent snapshot.
     */
    std::string statsJson() const;

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        /** Set by the connection thread as its last action; the
         * reaper only joins (and erases) done connections. */
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void serveConnection(Connection *conn);
    Response handle(const Request &req);
    Response handleCompile(const Request &req);

    /** Compile @p req now (admission already granted). */
    Response compileNow(const Request &req);

    /** Retry-after hint from the recent request latency. */
    int64_t retryAfterHintMs() const;

    void flushOnDrain();

    ServerOptions options_;
    CompileCache cache_;
    support::MetricsRegistry metrics_;
    std::unique_ptr<support::ThreadPool> pool_;

    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    int stop_pipe_[2] = {-1, -1};

    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::atomic<bool> joined_{false};
    std::atomic<size_t> admitted_{0};  ///< queued + compiling

    std::mutex conn_mutex_;
    std::list<Connection> connections_;
};

} // namespace treegion::service

#endif // TREEGION_SERVICE_SERVER_H
