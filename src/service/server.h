/**
 * @file
 * treegiond's engine: a persistent compile server on an epoll event
 * loop.
 *
 * One event-loop thread multiplexes the Unix-domain and TCP
 * listeners, every live connection, a wake pipe (compile completions
 * posted from the worker pool) and a stop pipe (so requestStop() is
 * safe to call from a signal handler). Connections are nonblocking
 * state machines: bytes accumulate in a per-connection read buffer,
 * every complete frame in the buffer is dispatched in one pass
 * (request batching — a client that pipelines N frames gets all N
 * admitted together instead of lock-step round trips), and responses
 * are flushed through a per-connection write buffer, falling back to
 * EPOLLOUT when the kernel buffer fills. Lightweight verbs (ping,
 * stats, fill) are answered on the loop thread; compile work is
 * dispatched to the shared support::ThreadPool and its response is
 * posted back to the loop, so the loop never blocks on a compile.
 * Responses are sequenced per connection: pipelined requests finish
 * on the pool in any order but are written back in arrival order.
 *
 * Robustness model (unchanged from the threaded server):
 *  - admission control: at most queue_limit requests may be admitted
 *    (queued + compiling) at once; beyond that the server answers
 *    "rejected" with a retry-after hint instead of growing an
 *    unbounded queue;
 *  - per-request deadlines: a request that waited in the queue past
 *    its deadline-ms is answered "deadline" without compiling —
 *    stale work is cancelled, not executed;
 *  - per-connection limits: at most max_connections concurrent
 *    connections; extra ones get one "rejected" response and are
 *    closed;
 *  - graceful drain: requestStop() (SIGTERM) closes the listeners,
 *    answers "shutting-down" to new requests on live connections,
 *    finishes everything already admitted, then flushes metrics (a
 *    JSON snapshot and one Chrome trace per drain).
 *
 * Results are content-addressed in a CompileCache; with verify_hits
 * (default on in debug builds) every hit is recompiled and asserted
 * bit-identical to the cached bytes, enforcing the determinism
 * invariant end to end.
 *
 * Clustering: a replica started with a peer list and its own address
 * shares a consistent-hash ring with its peers (and with cluster
 * clients — see service/ring.h). Clients route each request to the
 * replica owning its cache key; when a replica compiles a key it
 * does not own (a misrouted client, or a rebalanced ring after a
 * peer died), it forwards the finished result to the owner with a
 * "fill" request, so the owner's cache warms without recompiling.
 * Fills are best-effort: a peer that refuses the connection is
 * marked dead and skipped from then on. Per-shard counters
 * (shard_owned/shard_foreign/fills_*) are folded into /stats.
 */

#ifndef TREEGION_SERVICE_SERVER_H
#define TREEGION_SERVICE_SERVER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/protocol.h"
#include "service/ring.h"
#include "support/metrics.h"
#include "support/spans.h"
#include "support/thread_pool.h"

namespace treegion::service {

/**
 * retryAfterHintMs() fallback while the request histogram is still
 * empty: a cold daemon has measured nothing, so it hints a flat
 * default instead of the clamp floor (which told backed-off clients
 * to come back almost immediately). Pinned by service_test.cc.
 */
constexpr int64_t kColdRetryHintMs = 50;

/** Everything configurable about a Server. */
struct ServerOptions
{
    /** Unix-domain socket path; empty = no unix listener. */
    std::string unix_path;

    /** TCP port; -1 = no TCP listener, 0 = pick an ephemeral port.
     * Always prefer 0 in tests and scripts and read the bound port
     * back from Server::tcpPort() (treegiond prints it): fixed ports
     * collide across concurrent test runs. */
    int tcp_port = -1;

    /** TCP bind address. */
    std::string tcp_host = "127.0.0.1";

    /** Compile pool workers; 0 = one per hardware thread. */
    size_t threads = 0;

    /** Max admitted (queued + compiling) compile requests. */
    size_t queue_limit = 64;

    /** Max concurrent connections. */
    size_t max_connections = 64;

    /** Frame size limit (oversized requests are rejected). */
    size_t max_frame_bytes = kDefaultMaxFrameBytes;

    /** Compile cache payload budget; 0 disables the cache. */
    size_t cache_bytes = 64u << 20;

    /** Recompile on every cache hit and assert bit-identity. */
#ifndef NDEBUG
    bool verify_hits = true;
#else
    bool verify_hits = false;
#endif

    /** Write the metrics JSON here on drain; empty = don't. */
    std::string metrics_path;

    /** Write a Chrome trace here on drain; empty = tracing off. */
    std::string trace_path;

    /**
     * Cluster membership: every replica's client-visible address
     * (including this one's). Non-empty = clustered; the ring over
     * these addresses decides which replica owns which cache key.
     */
    std::vector<std::string> peers;

    /** This replica's own address, verbatim as it appears in peers. */
    std::string self_address;

    /**
     * Test hook: hold every compile request in the queue for this
     * long before it is considered for execution. Makes deadline and
     * backpressure behavior deterministic in tests and CI, and pins
     * the per-request service time in the cluster capacity bench.
     */
    int64_t debug_queue_delay_ms = 0;

    /**
     * Write every recorded span (support/spans.h JSONL) here on
     * drain; empty = do not enable span collection. Requests that
     * arrive with `trace-id`/`parent-span` headers join the caller's
     * trace; others root fresh server-local traces, sampled at
     * span_sample.
     */
    std::string span_path;

    /** Probability a locally rooted trace is sampled, in [0, 1].
     * Propagated contexts keep their root's decision. */
    double span_sample = 1.0;

    /**
     * Crash flight-recorder dump target (support/flightrec.h): set
     * as the configured dump path at start, written by TG_PANIC /
     * fatal-signal handlers and again on the drain path so a clean
     * SIGTERM leaves the same post-mortem artifact a crash would.
     * Empty = leave the recorder's dump target alone.
     */
    std::string flightrec_path;

    /**
     * Peak-memory admission budget in bytes; 0 = no memory gate.
     * When set, every compile request's peak footprint is projected
     * from its module and options (sched/mem_estimate.h) before
     * dispatch. Requests whose projection does not fit next to the
     * in-flight total are parked (largest-fitting-first re-admission
     * as compiles finish) rather than dispatched; parked requests
     * beyond queue_limit are rejected with a retry hint. A request
     * projected over the entire budget runs solo instead of being
     * rejected, mirroring support::MemoryGate's progress rule.
     */
    uint64_t mem_budget_bytes = 0;
};

/** A running compile server (see the file header for the model). */
class Server
{
  public:
    explicit Server(ServerOptions options);

    /** Drains and stops if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the configured listeners and start the event loop.
     * @return false and set @p error on bind/listen failure.
     */
    bool start(std::string *error);

    /**
     * Begin a graceful drain. Async-signal-safe: just an atomic
     * store and a pipe write, so SIGTERM handlers may call it.
     */
    void requestStop();

    /** Block until the drain completes and every thread is joined. */
    void waitUntilStopped();

    /** @return the TCP port actually bound (after start). */
    int tcpPort() const { return tcp_port_; }

    /** @return the live metrics registry. */
    support::MetricsRegistry &metrics() { return metrics_; }

    /** @return a snapshot of the compile cache counters. */
    CompileCache::Stats cacheStats() const { return cache_.stats(); }

    /**
     * @return the /stats JSON: the metrics registry plus cache,
     * cluster and configuration gauges, one consistent snapshot.
     */
    std::string statsJson() const;

    /**
     * Flush buffered telemetry (metrics JSON, span JSONL, flight
     * recorder) to the configured paths right now. Runs on the
     * clean-drain path; also the daemon's TG_PANIC hook, so a
     * panic on any thread leaves the same evidence a drain would.
     * NOT async-signal-safe — fatal-signal handlers get only the
     * flight recorder's write()-based dump.
     */
    void flushTelemetry();

  private:
    /** One nonblocking connection's state machine. */
    struct Conn
    {
        int fd = -1;
        uint64_t id = 0;
        bool counted = true;  ///< occupies a max_connections slot
        bool http = false;    ///< switched into one-shot HTTP mode
        bool read_eof = false;
        bool want_close = false;  ///< close once out_ is flushed
        bool epollout = false;    ///< EPOLLOUT currently armed
        std::string in;    ///< received, not yet consumed
        std::string out;   ///< encoded, not yet written
        size_t out_off = 0;
        /** Oversized-frame bytes still to read and discard before
         * the connection may close (closing earlier would RST the
         * rejection response out of the peer's receive buffer). */
        size_t drain_left = 0;
        uint64_t next_seq = 0;  ///< sequence of the next request
        uint64_t sent_seq = 0;  ///< responses appended to out so far
        /** Finished responses waiting for their turn in sequence. */
        std::map<uint64_t, std::string> done;
        size_t inflight = 0;  ///< requests on the pool right now
    };

    /** A compile finished on the pool; deliver on the loop thread. */
    struct Completion
    {
        uint64_t conn_id = 0;
        uint64_t seq = 0;
        std::string encoded;
        /** Memory reservation to release on delivery (0 = none). */
        uint64_t projected = 0;
        /** The request's trace context (invalid = untraced): the
         * loop thread records "response-write" under it. */
        support::SpanContext trace;
        /** epochUs when the pool posted the completion. */
        int64_t posted_us = 0;
    };

    /** A compile parked by the memory gate, awaiting headroom. */
    struct ParkedCompile
    {
        uint64_t conn_id = 0;
        uint64_t seq = 0;
        int64_t enqueue_ms = 0;   ///< original arrival time
        uint64_t projected = 0;   ///< projected peak footprint
        /** epochUs when parked (0 = span collection off). */
        int64_t park_start_us = 0;
        Request req;
    };

    void eventLoop();
    void acceptPending(int listener_fd);
    void onReadable(Conn &conn);
    void onWritable(Conn &conn);
    /** Consume every complete frame in conn.in. */
    void consumeBuffer(Conn &conn);
    void dispatch(Conn &conn, std::string payload);
    /** Answer verbs the loop thread can serve without the pool. */
    Response handleInline(const Request &req);
    /** Admission-check @p req and either answer inline or dispatch
     * the compile to the pool. */
    void dispatchCompile(Conn &conn, uint64_t seq, Request req);
    /** Projected peak compile footprint of @p req; 0 = no budget. */
    uint64_t projectedPeakBytes(const Request &req) const;
    /** True when @p projected fits next to the in-flight total. */
    bool memFits(uint64_t projected) const;
    /**
     * Reserve a queue slot (and @p projected memory bytes) and hand
     * the compile to the pool. @return false untouched when the
     * queue is full. @p counted: the request already holds its
     * conn.inflight / jobs_inflight_ counts (parked re-admission).
     * @p park_start_us/@p park_end_us: the memory-gate park window
     * (epochUs) a re-admitted request waited through, 0/0 when it
     * was never parked — recorded as a "mem-gate-park" span.
     */
    bool submitCompile(Conn &conn, uint64_t seq, int64_t enqueue_ms,
                       uint64_t projected, Request &&req,
                       bool counted, int64_t park_start_us = 0,
                       int64_t park_end_us = 0);
    /** Re-admit parked compiles that now fit (loop thread). */
    void admitParked();
    void queueResponse(Conn &conn, uint64_t seq,
                       const Response &resp);
    void queueRaw(Conn &conn, uint64_t seq, std::string encoded);
    /** Flush conn.out as far as the kernel accepts. */
    void flushWrites(Conn &conn);
    void closeConn(Conn &conn);
    void updateEpollOut(Conn &conn);
    void drainCompletions();
    bool shouldExitLoop() const;

    /** Compile @p req now (admission already granted; pool thread). */
    Response compileNow(const Request &req);

    /** Offer @p body to @p key's ring owner (pool thread). */
    void forwardFill(size_t owner_index, const CacheKey &key,
                     const std::string &body);

    /** Retry-after hint from the recent request latency. */
    int64_t retryAfterHintMs() const;



    ServerOptions options_;
    /** `svc` stamp on this server's spans: self_address when
     * clustered (so in-process multi-replica tests separate
     * cleanly), else "treegiond". Fixed at construction — span
     * contexts hold a pointer into it. */
    std::string span_service_;
    CompileCache cache_;
    /**
     * Warm-path shortcut: raw (module text, fingerprint) key ->
     * canonical cache key, learned on every compile. A repeat
     * submission with byte-identical text skips parse + verify +
     * canonical printing on its way to the cache — the dominant
     * per-hit cost under farm load. Formatting variants miss here
     * and fall through to the canonical path, so semantics are
     * unchanged. Bounded by clearing wholesale at kRawAliasCap.
     */
    static constexpr size_t kRawAliasCap = 1u << 16;
    mutable std::mutex alias_mutex_;
    std::map<std::pair<uint64_t, uint64_t>, CacheKey> raw_alias_;
    support::MetricsRegistry metrics_;
    std::unique_ptr<support::ThreadPool> pool_;

    /** Static cluster ring over options_.peers (empty = solo). */
    HashRing cluster_;
    size_t self_index_ = 0;
    /** Peers that refused a fill; skipped until restart. */
    std::unique_ptr<std::atomic<bool>[]> peer_dead_;

    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    int epoll_fd_ = -1;
    int stop_pipe_[2] = {-1, -1};
    int wake_pipe_[2] = {-1, -1};

    std::thread loop_thread_;
    std::atomic<bool> stopping_{false};   ///< refuse new compiles
    std::atomic<bool> hard_stop_{false};  ///< finish + exit the loop
    std::atomic<bool> started_{false};
    std::atomic<bool> joined_{false};
    std::atomic<size_t> admitted_{0};  ///< queued + compiling
    std::atomic<size_t> jobs_inflight_{0};

    std::mutex completions_mutex_;
    std::vector<Completion> completions_;

    /**
     * Memory-admission state, loop-thread only (dispatch and
     * completion delivery both run on the event loop, so no lock):
     * the aggregate projected peak of every dispatched compile, and
     * the compiles parked until a release makes room.
     */
    uint64_t mem_projected_inflight_ = 0;
    std::vector<ParkedCompile> mem_parked_;

    uint64_t next_conn_id_ = 16;  ///< ids below are listeners/pipes
    std::map<uint64_t, std::unique_ptr<Conn>> conns_;
    size_t counted_conns_ = 0;
};

} // namespace treegion::service

#endif // TREEGION_SERVICE_SERVER_H
