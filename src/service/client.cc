#include "service/client.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/spans.h"
#include "support/string_utils.h"
#include "support/trace.h"

namespace treegion::service {

std::unique_ptr<Client>
Client::connect(const std::string &address, std::string *error)
{
    if (support::startsWith(address, "unix:"))
        return connectUnix(address.substr(5), error);
    if (!address.empty() && address[0] == '/')
        return connectUnix(address, error);
    const size_t colon = address.rfind(':');
    if (colon == std::string::npos) {
        if (error)
            *error = "expected unix:<path>, /abs/path or host:port, "
                     "got '" +
                     address + "'";
        return nullptr;
    }
    const int port = std::atoi(address.substr(colon + 1).c_str());
    if (port <= 0 || port > 65535) {
        if (error)
            *error = "bad port in '" + address + "'";
        return nullptr;
    }
    return connectTcp(address.substr(0, colon), port, error);
}

std::unique_ptr<Client>
Client::connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "unix socket path too long: " + path;
        return nullptr;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::strerror(errno);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = path + ": " + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<Client>(new Client(fd, path));
}

std::unique_ptr<Client>
Client::connectTcp(const std::string &host, int port,
                   std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        // Not a literal address: resolve it.
        hostent *ent = ::gethostbyname(host.c_str());
        if (!ent || ent->h_addrtype != AF_INET || !ent->h_addr_list[0]) {
            if (error)
                *error = "cannot resolve host '" + host + "'";
            return nullptr;
        }
        std::memcpy(&addr.sin_addr, ent->h_addr_list[0],
                    sizeof(addr.sin_addr));
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::strerror(errno);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = support::strprintf("%s:%d: %s", host.c_str(),
                                        port, std::strerror(errno));
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<Client>(
        new Client(fd, support::strprintf("%s:%d", host.c_str(), port)));
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Client::call(const Request &req, Response *resp, std::string *error)
{
    support::SpanScope span("call",
                            support::SpanScope::Root::IfEnabled);
    const Request *send = &req;
    Request traced;
    if (span.live()) {
        span.arg("server", address_).arg("verb", req.verb);
        if (req.trace_id.empty()) {
            traced = req;
            const support::SpanContext &ctx = span.context();
            traced.trace_id =
                support::traceIdHex(ctx.trace_hi, ctx.trace_lo);
            traced.parent_span = support::spanIdHex(ctx.span);
            send = &traced;
        }
    }
    // A failed write may still have an answer waiting: a server
    // rejecting an oversized frame responds without reading the
    // whole payload, so our write can die on EPIPE while the
    // rejection sits in the receive buffer. Read before giving up.
    std::string write_error;
    const bool wrote =
        writeFrame(fd_, encodeRequest(*send), &write_error);
    std::string payload;
    const FrameStatus st =
        readFrame(fd_, &payload, max_frame_bytes, error);
    if (st != FrameStatus::Ok) {
        if (error) {
            if (!wrote)
                *error = write_error;
            else if (error->empty())
                *error = "connection closed by server";
        }
        span.arg("status", "transport-error");
        return false;
    }
    if (!parseResponse(payload, *resp, error)) {
        span.arg("status", "parse-error");
        return false;
    }
    span.arg("status", resp->status);
    if (resp->cached)
        span.arg("cached", static_cast<int64_t>(1));
    return true;
}

bool
Client::syncClock(std::string *error)
{
    support::SpanCollector &collector =
        support::SpanCollector::instance();
    if (!collector.enabled())
        return true;
    Request ping;
    ping.verb = "ping";
    Response resp;
    const int64_t t0 = support::epochUs();
    if (!call(ping, &resp, error))
        return false;
    const int64_t t1 = support::epochUs();
    if (resp.server_time_us == 0)
        return true; // pre-`time-us` server: nothing to align
    // NTP-style: assume the reply clock sample sits at the midpoint
    // of the round trip, so the error is bounded by rtt/2.
    const int64_t offset = resp.server_time_us - (t0 + t1) / 2;
    support::TraceSpan s;
    s.trace_hi = support::mintSpanId();
    s.trace_lo = support::mintSpanId();
    s.span = support::mintSpanId();
    s.parent = 0;
    s.name = "clock-sync";
    s.service = collector.service();
    s.tid = support::TraceCollector::currentThreadId();
    s.start_us = t0;
    s.dur_us = t1 - t0;
    auto strArg = [](const char *key, std::string value) {
        support::SpanArg a;
        a.key = key;
        a.type = support::SpanArg::Type::Str;
        a.s = std::move(value);
        return a;
    };
    auto intArg = [](const char *key, int64_t value) {
        support::SpanArg a;
        a.key = key;
        a.type = support::SpanArg::Type::Int;
        a.i = value;
        return a;
    };
    s.args.push_back(strArg("member", address_));
    s.args.push_back(intArg("offset_us", offset));
    s.args.push_back(intArg("rtt_us", t1 - t0));
    collector.record(std::move(s));
    return true;
}

} // namespace treegion::service
