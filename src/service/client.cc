#include "service/client.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/string_utils.h"

namespace treegion::service {

std::unique_ptr<Client>
Client::connect(const std::string &address, std::string *error)
{
    if (support::startsWith(address, "unix:"))
        return connectUnix(address.substr(5), error);
    if (!address.empty() && address[0] == '/')
        return connectUnix(address, error);
    const size_t colon = address.rfind(':');
    if (colon == std::string::npos) {
        if (error)
            *error = "expected unix:<path>, /abs/path or host:port, "
                     "got '" +
                     address + "'";
        return nullptr;
    }
    const int port = std::atoi(address.substr(colon + 1).c_str());
    if (port <= 0 || port > 65535) {
        if (error)
            *error = "bad port in '" + address + "'";
        return nullptr;
    }
    return connectTcp(address.substr(0, colon), port, error);
}

std::unique_ptr<Client>
Client::connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "unix socket path too long: " + path;
        return nullptr;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::strerror(errno);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = path + ": " + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client>
Client::connectTcp(const std::string &host, int port,
                   std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        // Not a literal address: resolve it.
        hostent *ent = ::gethostbyname(host.c_str());
        if (!ent || ent->h_addrtype != AF_INET || !ent->h_addr_list[0]) {
            if (error)
                *error = "cannot resolve host '" + host + "'";
            return nullptr;
        }
        std::memcpy(&addr.sin_addr, ent->h_addr_list[0],
                    sizeof(addr.sin_addr));
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::strerror(errno);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = support::strprintf("%s:%d: %s", host.c_str(),
                                        port, std::strerror(errno));
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Client::call(const Request &req, Response *resp, std::string *error)
{
    // A failed write may still have an answer waiting: a server
    // rejecting an oversized frame responds without reading the
    // whole payload, so our write can die on EPIPE while the
    // rejection sits in the receive buffer. Read before giving up.
    std::string write_error;
    const bool wrote =
        writeFrame(fd_, encodeRequest(req), &write_error);
    std::string payload;
    const FrameStatus st =
        readFrame(fd_, &payload, max_frame_bytes, error);
    if (st != FrameStatus::Ok) {
        if (error) {
            if (!wrote)
                *error = write_error;
            else if (error->empty())
                *error = "connection closed by server";
        }
        return false;
    }
    return parseResponse(payload, *resp, error);
}

} // namespace treegion::service
