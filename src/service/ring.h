/**
 * @file
 * Consistent-hash routing for the treegiond compile farm.
 *
 * A HashRing places every cluster member at kVirtualNodes points on
 * a 64-bit ring (one FNV-1a hash per (member, replica-index) pair);
 * a cache key is owned by the member whose point follows the key's
 * point clockwise. Virtual nodes smooth the shard sizes (the
 * max/min load ratio over a large key population stays near 1, see
 * tests/cluster_test.cc), and membership changes only remap the keys
 * adjacent to the departed/arrived member's points — about 1/N of
 * the key space — so a replica join or crash does not invalidate the
 * surviving replicas' caches.
 *
 * ClusterClient is the client half: it routes each compile request
 * to the replica that owns the request's cache key (computed
 * client-side from the same canonical function text + configuration
 * fingerprint the server hashes), keeps one pooled connection per
 * member, and fails over — a member whose transport dies or that
 * answers "shutting-down" is marked dead, the ring is rebuilt over
 * the survivors, and the request is retried on its new owner. Every
 * observed response is tallied in a per-member ledger so tests and
 * CI can reconcile client-observed totals against each replica's
 * /stats counters exactly.
 */

#ifndef TREEGION_SERVICE_RING_H
#define TREEGION_SERVICE_RING_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"

namespace treegion::service {

/** Consistent-hash ring over cluster member addresses. */
class HashRing
{
  public:
    /** Virtual nodes per member (smooths shard sizes). */
    static constexpr size_t kVirtualNodes = 128;

    HashRing() = default;

    /**
     * Build a ring over @p members (order does not matter: points
     * depend only on the address strings, so every client and every
     * replica that knows the same membership agrees on ownership).
     */
    explicit HashRing(std::vector<std::string> members,
                      size_t virtual_nodes = kVirtualNodes);

    /** @return the member addresses this ring was built over. */
    const std::vector<std::string> &members() const
    {
        return members_;
    }

    /** @return number of members. */
    size_t size() const { return members_.size(); }

    bool empty() const { return members_.empty(); }

    /** @return the index (into members()) of @p key's owner. */
    size_t ownerIndex(const CacheKey &key) const;

    /** @return the address of @p key's owner. */
    const std::string &owner(const CacheKey &key) const;

    /** @return the ring point of @p key (for tests/debugging). */
    static uint64_t keyPoint(const CacheKey &key);

  private:
    std::vector<std::string> members_;
    /** Sorted (ring point, member index) pairs. */
    std::vector<std::pair<uint64_t, uint32_t>> points_;
};

/**
 * @return the cache key @p req will be stored under server-side:
 * canonical text of the requested function plus the configuration
 * fingerprint. Unparseable modules hash the raw text instead — any
 * deterministic route works, the owner will answer the error.
 */
CacheKey requestRoutingKey(const Request &req);

/** A cluster-aware client: routes by key, fails over on death. */
class ClusterClient
{
  public:
    /** Client-observed per-member tallies (for ledger checks). */
    struct MemberLedger
    {
        uint64_t calls = 0;      ///< responses received
        uint64_t ok = 0;         ///< status "ok"
        uint64_t cached = 0;     ///< ok with cached=1
        uint64_t transport_errors = 0;  ///< failed sends/reads
        /** Attempts that ended in a mark-dead reroute, and the wall
         * time they burned before failing — the visible price of a
         * retry (merged traces show the same cost as per-attempt
         * "call" spans with status "transport-error"). */
        uint64_t failed_attempts = 0;
        double failed_ms = 0.0;
    };

    explicit ClusterClient(std::vector<std::string> members);

    /**
     * Route @p req to its owning replica and block for the response.
     * Compile and fill requests route by cache key; other verbs go
     * to the first live member. On a transport failure or a
     * "shutting-down" answer the member is marked dead and the
     * request retried on the ring of survivors.
     * @return false and set @p error only when no replica is left.
     */
    bool call(const Request &req, Response *resp, std::string *error);

    /**
     * Like call(), with the routing key supplied by the caller —
     * for hot loops that reuse a request and do not want the module
     * re-parsed per call (requestRoutingKey is pure, so a cached
     * value stays valid).
     */
    bool callWithKey(const CacheKey &key, const Request &req,
                     Response *resp, std::string *error);

    /** @return the member that served the last successful call. */
    const std::string &lastMember() const { return last_member_; }

    /** @return members still considered alive. */
    std::vector<std::string> aliveMembers() const;

    /** @return the client-observed ledger, keyed by address. */
    const std::map<std::string, MemberLedger> &ledger() const
    {
        return ledger_;
    }

    /** Frame size limit applied to responses. */
    size_t max_frame_bytes = kDefaultMaxFrameBytes;

  private:
    bool callRouted(const CacheKey &key, bool by_key,
                    const Request &req, Response *resp,
                    std::string *error);
    void markDead(size_t index);
    void rebuildRing();

    std::vector<std::string> members_;
    std::vector<bool> alive_;
    HashRing ring_;  ///< over the alive members only
    /** Pooled connection per member address. */
    std::map<std::string, std::unique_ptr<Client>> conns_;
    std::map<std::string, MemberLedger> ledger_;
    std::string last_member_;
};

} // namespace treegion::service

#endif // TREEGION_SERVICE_RING_H
