#include "service/ring.h"

#include <algorithm>

#include "ir/parser.h"
#include "support/hash.h"
#include "support/logging.h"
#include "support/spans.h"
#include "support/string_utils.h"

namespace treegion::service {

namespace {

/**
 * splitmix64 finalizer. FNV alone spreads poorly over the short,
 * near-identical "addr#index" labels virtual nodes produce — arcs
 * end up lumpy enough that one member can own 1.7x its fair share.
 * A full-avalanche mix on top restores balance (see the shard-ratio
 * bound in tests/cluster_test.cc).
 */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

HashRing::HashRing(std::vector<std::string> members,
                   size_t virtual_nodes)
    : members_(std::move(members))
{
    points_.reserve(members_.size() * virtual_nodes);
    for (uint32_t m = 0; m < members_.size(); ++m) {
        const uint64_t base = support::fnv1a64(members_[m]);
        for (size_t v = 0; v < virtual_nodes; ++v)
            points_.emplace_back(mix64(base + v), m);
    }
    std::sort(points_.begin(), points_.end());
}

uint64_t
HashRing::keyPoint(const CacheKey &key)
{
    // The key halves are already independent FNV streams; fold them
    // so both contribute to the ring position.
    return key.hi ^ (key.lo * 0x9e3779b97f4a7c15ull);
}

size_t
HashRing::ownerIndex(const CacheKey &key) const
{
    TG_ASSERT(!points_.empty());
    const uint64_t point = keyPoint(key);
    // First ring point at or after the key's point, wrapping.
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(point, uint32_t{0}),
        [](const auto &a, const auto &b) { return a.first < b.first; });
    if (it == points_.end())
        it = points_.begin();
    return it->second;
}

const std::string &
HashRing::owner(const CacheKey &key) const
{
    return members_[ownerIndex(key)];
}

CacheKey
requestRoutingKey(const Request &req)
{
    std::string error;
    if (std::unique_ptr<ir::Module> mod =
            ir::parseModule(req.module_text, &error)) {
        const ir::Function *fn = nullptr;
        if (req.function.empty()) {
            if (!mod->functions().empty())
                fn = mod->functions().front().get();
        } else if (mod->hasFunction(req.function)) {
            fn = &mod->function(req.function);
        }
        if (fn) {
            return makeCacheKey(canonicalFunctionText(*fn),
                                req.configFingerprint());
        }
    }
    return makeCacheKey(req.module_text, req.configFingerprint());
}

ClusterClient::ClusterClient(std::vector<std::string> members)
    : members_(std::move(members)), alive_(members_.size(), true)
{
    TG_ASSERT(!members_.empty());
    rebuildRing();
}

void
ClusterClient::rebuildRing()
{
    std::vector<std::string> alive;
    for (size_t i = 0; i < members_.size(); ++i) {
        if (alive_[i])
            alive.push_back(members_[i]);
    }
    ring_ = HashRing(std::move(alive));
}

void
ClusterClient::markDead(size_t index)
{
    alive_[index] = false;
    conns_.erase(members_[index]);
    rebuildRing();
}

std::vector<std::string>
ClusterClient::aliveMembers() const
{
    return ring_.members();
}

bool
ClusterClient::call(const Request &req, Response *resp,
                    std::string *error)
{
    const bool by_key = req.verb == "compile" || req.verb == "fill";
    return callRouted(by_key ? requestRoutingKey(req) : CacheKey{},
                      by_key, req, resp, error);
}

bool
ClusterClient::callWithKey(const CacheKey &key, const Request &req,
                           Response *resp, std::string *error)
{
    return callRouted(key, /*by_key=*/true, req, resp, error);
}

bool
ClusterClient::callRouted(const CacheKey &key, bool by_key,
                          const Request &req, Response *resp,
                          std::string *error)
{
    // The whole routed request is one span; each attempt below adds
    // a child "call" span (Client::call), so a merged trace shows
    // the failed attempt next to the retry that succeeded.
    support::SpanScope span("client-request",
                            support::SpanScope::Root::IfEnabled);
    if (span.live())
        span.arg("verb", req.verb);

    // Each retry routes on the ring of survivors, so a request can
    // visit at most one member per death — bounded by cluster size.
    std::string last_error = "no cluster member reachable";
    while (!ring_.empty()) {
        const std::string &addr =
            by_key ? ring_.owner(key) : ring_.members().front();
        const size_t index = static_cast<size_t>(
            std::find(members_.begin(), members_.end(), addr) -
            members_.begin());
        const int64_t attempt_start = support::epochUs();
        auto recordFailed = [&](const std::string &member) {
            MemberLedger &led = ledger_[member];
            led.failed_attempts += 1;
            led.failed_ms +=
                static_cast<double>(support::epochUs() -
                                    attempt_start) /
                1000.0;
        };

        auto it = conns_.find(addr);
        if (it == conns_.end()) {
            std::string connect_error;
            auto conn = Client::connect(addr, &connect_error);
            if (!conn) {
                last_error = addr + ": " + connect_error;
                recordFailed(addr);
                markDead(index);
                continue;
            }
            conn->max_frame_bytes = max_frame_bytes;
            // First contact with this member while tracing: estimate
            // its clock offset so --trace-merge can align its spans
            // (best-effort; an old server just lacks `time-us`).
            if (support::SpanCollector::instance().enabled()) {
                std::string sync_error;
                conn->syncClock(&sync_error);
            }
            it = conns_.emplace(addr, std::move(conn)).first;
        }

        std::string call_error;
        if (!it->second->call(req, resp, &call_error)) {
            // A pooled connection may have died since the last call;
            // the member itself gets one fresh-connection retry
            // before it is declared dead.
            ledger_[addr].transport_errors += 1;
            conns_.erase(addr);
            std::string reconnect_error;
            auto conn = Client::connect(addr, &reconnect_error);
            if (conn) {
                conn->max_frame_bytes = max_frame_bytes;
                const bool ok = conn->call(req, resp, &call_error);
                if (ok) {
                    conns_.emplace(addr, std::move(conn));
                } else {
                    ledger_[addr].transport_errors += 1;
                }
                if (!ok) {
                    last_error = addr + ": " + call_error;
                    recordFailed(addr);
                    markDead(index);
                    continue;
                }
            } else {
                last_error = addr + ": " + reconnect_error;
                recordFailed(addr);
                markDead(index);
                continue;
            }
        }

        if (resp->status == status::kShuttingDown) {
            // A draining replica is leaving: reroute like a death.
            // The ledger still records the observed response.
            MemberLedger &led = ledger_[addr];
            led.calls += 1;
            recordFailed(addr);
            markDead(index);
            continue;
        }

        MemberLedger &led = ledger_[addr];
        led.calls += 1;
        if (resp->status == status::kOk) {
            led.ok += 1;
            if (resp->cached)
                led.cached += 1;
        }
        last_member_ = addr;
        if (span.live())
            span.arg("member", addr).arg("status", resp->status);
        return true;
    }
    if (error)
        *error = last_error;
    if (span.live())
        span.arg("status", "unreachable");
    return false;
}

} // namespace treegion::service
