#include "service/protocol.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "support/string_utils.h"

namespace treegion::service {

namespace {

constexpr const char *kRequestMagic = "treegion-req/1";
constexpr const char *kResponseMagic = "treegion-resp/1";

/** Read exactly @p len bytes; false on EOF/error (EINTR retried). */
bool
readAll(int fd, char *buf, size_t len)
{
    size_t got = 0;
    while (got < len) {
        const ssize_t n = ::read(fd, buf + got, len - got);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        got += static_cast<size_t>(n);
    }
    return true;
}

/**
 * Write exactly @p len bytes; false on error (EINTR retried).
 * MSG_NOSIGNAL: a peer that disconnected mid-response must surface
 * as EPIPE here, not kill an in-process server with SIGPIPE.
 */
bool
writeAll(int fd, const char *buf, size_t len)
{
    size_t put = 0;
    while (put < len) {
        const ssize_t n =
            ::send(fd, buf + put, len - put, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        put += static_cast<size_t>(n);
    }
    return true;
}

/**
 * Split a payload into header lines and body at the first blank
 * line; verifies the magic first line.
 */
bool
splitPayload(const std::string &payload, const char *magic,
             std::vector<std::pair<std::string, std::string>> *headers,
             std::string *body, std::string *error)
{
    size_t pos = payload.find('\n');
    if (pos == std::string::npos ||
        support::trim(payload.substr(0, pos)) != magic) {
        *error = std::string("expected ") + magic;
        return false;
    }
    ++pos;
    while (pos < payload.size()) {
        size_t eol = payload.find('\n', pos);
        if (eol == std::string::npos)
            eol = payload.size();
        const std::string line(
            support::trim(payload.substr(pos, eol - pos)));
        pos = eol + 1;
        if (line.empty()) {
            // Blank separator: the rest is the body, verbatim.
            *body = pos <= payload.size() ? payload.substr(pos) : "";
            return true;
        }
        const size_t colon = line.find(':');
        if (colon == std::string::npos) {
            *error = "malformed header line '" + line + "'";
            return false;
        }
        headers->emplace_back(
            std::string(support::trim(line.substr(0, colon))),
            std::string(support::trim(line.substr(colon + 1))));
    }
    return true;  // headers only, no body
}

} // namespace

FrameStatus
readFrame(int fd, std::string *payload, size_t max_bytes,
          std::string *error, std::string *http_target)
{
    unsigned char prefix[4];
    {
        // A clean close before the first byte is a normal end of
        // conversation, not an error.
        const ssize_t n = ::read(fd, prefix, 1);
        if (n == 0)
            return FrameStatus::Closed;
        if (n < 0) {
            if (error)
                *error = std::strerror(errno);
            return FrameStatus::Error;
        }
    }
    if (!readAll(fd, reinterpret_cast<char *>(prefix) + 1, 3)) {
        if (error)
            *error = "truncated frame length";
        return FrameStatus::Error;
    }

    if (std::memcmp(prefix, "GET ", 4) == 0) {
        // HTTP: consume the request line + headers (bounded) and
        // hand the target back.
        std::string head = "GET ";
        char c;
        while (head.size() < 8192 &&
               head.find("\r\n\r\n") == std::string::npos &&
               head.find("\n\n") == std::string::npos) {
            if (!readAll(fd, &c, 1))
                break;
            head.push_back(c);
        }
        if (http_target) {
            size_t end = head.find(' ', 4);
            if (end == std::string::npos)
                end = head.find('\n', 4);
            if (end == std::string::npos)
                end = head.size();
            *http_target = head.substr(4, end - 4);
        }
        return FrameStatus::Http;
    }

    const size_t len = (static_cast<size_t>(prefix[0]) << 24) |
                       (static_cast<size_t>(prefix[1]) << 16) |
                       (static_cast<size_t>(prefix[2]) << 8) |
                       static_cast<size_t>(prefix[3]);
    if (len > max_bytes) {
        if (error)
            *error = support::strprintf(
                "frame of %zu bytes exceeds the %zu-byte limit", len,
                max_bytes);
        // Consume the payload (bounded) so the rejection response
        // can reach a peer that is still writing — closing with
        // unread data would RST the connection and destroy the
        // response before the peer reads it.
        constexpr size_t kMaxDrainBytes = 64u << 20;
        char sink[4096];
        size_t left = len < kMaxDrainBytes ? len : kMaxDrainBytes;
        while (left > 0) {
            const ssize_t n = ::read(
                fd, sink, left < sizeof(sink) ? left : sizeof(sink));
            if (n <= 0 && errno != EINTR)
                break;
            if (n > 0)
                left -= static_cast<size_t>(n);
        }
        return FrameStatus::TooLarge;
    }
    payload->resize(len);
    if (len > 0 && !readAll(fd, payload->data(), len)) {
        if (error)
            *error = "truncated frame payload";
        return FrameStatus::Error;
    }
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, const std::string &payload, std::string *error)
{
    const size_t len = payload.size();
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    if (!writeAll(fd, reinterpret_cast<const char *>(prefix), 4) ||
        !writeAll(fd, payload.data(), len)) {
        if (error)
            *error = std::strerror(errno);
        return false;
    }
    return true;
}

std::string
Request::configFingerprint() const
{
    std::ostringstream os;
    os << "options{" << options << "} function=" << function
       << " schedule=" << (want_schedule ? 1 : 0)
       << " profile=" << (profile ? 1 : 0)
       << " profile-seed=" << profile_seed
       << " profile-runs=" << profile_runs;
    return os.str();
}

std::string
encodeRequest(const Request &req)
{
    std::ostringstream os;
    os << kRequestMagic << '\n' << "verb: " << req.verb << '\n';
    if (!req.fill_key.empty())
        os << "fill-key: " << req.fill_key << '\n';
    if (!req.options.empty())
        os << "options: " << req.options << '\n';
    if (!req.function.empty())
        os << "function: " << req.function << '\n';
    if (req.deadline_ms != 0)
        os << "deadline-ms: " << req.deadline_ms << '\n';
    if (req.want_schedule)
        os << "want-schedule: 1\n";
    if (req.no_cache)
        os << "no-cache: 1\n";
    if (!req.trace_id.empty())
        os << "trace-id: " << req.trace_id << '\n';
    if (!req.parent_span.empty())
        os << "parent-span: " << req.parent_span << '\n';
    os << "profile: " << (req.profile ? 1 : 0) << '\n'
       << "profile-seed: " << req.profile_seed << '\n'
       << "profile-runs: " << req.profile_runs << '\n'
       << '\n'
       << req.module_text;
    return os.str();
}

bool
parseRequest(const std::string &payload, Request &out,
             std::string *error)
{
    std::vector<std::pair<std::string, std::string>> headers;
    std::string detail;
    if (!splitPayload(payload, kRequestMagic, &headers,
                      &out.module_text, &detail)) {
        if (error)
            *error = detail;
        return false;
    }
    for (const auto &[key, value] : headers) {
        if (key == "verb")
            out.verb = value;
        else if (key == "fill-key")
            out.fill_key = value;
        else if (key == "options")
            out.options = value;
        else if (key == "function")
            out.function = value;
        else if (key == "deadline-ms")
            out.deadline_ms = std::atoll(value.c_str());
        else if (key == "want-schedule")
            out.want_schedule = value != "0";
        else if (key == "no-cache")
            out.no_cache = value != "0";
        else if (key == "trace-id")
            out.trace_id = value;
        else if (key == "parent-span")
            out.parent_span = value;
        else if (key == "profile")
            out.profile = value != "0";
        else if (key == "profile-seed")
            out.profile_seed = std::strtoull(value.c_str(), nullptr, 10);
        else if (key == "profile-runs")
            out.profile_runs = std::atoi(value.c_str());
        // Unknown keys are ignored for forward compatibility.
    }
    if (out.verb != "compile" && out.verb != "stats" &&
        out.verb != "ping" && out.verb != "fill") {
        if (error)
            *error = "unknown verb '" + out.verb + "'";
        return false;
    }
    return true;
}

std::string
encodeResponse(const Response &resp)
{
    std::ostringstream os;
    os << kResponseMagic << '\n' << "status: " << resp.status << '\n';
    if (!resp.error.empty())
        os << "error: " << resp.error << '\n';
    if (resp.retry_after_ms != 0)
        os << "retry-after-ms: " << resp.retry_after_ms << '\n';
    if (resp.server_time_us != 0)
        os << "time-us: " << resp.server_time_us << '\n';
    os << "cached: " << (resp.cached ? 1 : 0) << '\n'
       << support::strprintf("compile-ms: %.3f\n", resp.compile_ms)
       << '\n'
       << resp.body;
    return os.str();
}

bool
parseResponse(const std::string &payload, Response &out,
              std::string *error)
{
    std::vector<std::pair<std::string, std::string>> headers;
    std::string detail;
    if (!splitPayload(payload, kResponseMagic, &headers, &out.body,
                      &detail)) {
        if (error)
            *error = detail;
        return false;
    }
    for (const auto &[key, value] : headers) {
        if (key == "status")
            out.status = value;
        else if (key == "error")
            out.error = value;
        else if (key == "retry-after-ms")
            out.retry_after_ms = std::atoll(value.c_str());
        else if (key == "time-us")
            out.server_time_us = std::atoll(value.c_str());
        else if (key == "cached")
            out.cached = value != "0";
        else if (key == "compile-ms")
            out.compile_ms = std::atof(value.c_str());
    }
    return true;
}

} // namespace treegion::service
