/**
 * @file
 * Content-addressed compile cache for the treegion compile service.
 *
 * A cache key is the 128-bit content hash of (canonical function
 * text, configuration fingerprint). "Canonical" means the function
 * is printed through ir::printFunction after parsing, so two
 * textually different but structurally identical submissions (extra
 * whitespace, comments, reordered incidentals the printer
 * normalizes) address the same entry. The configuration fingerprint
 * is the full encodePipelineOptions() line plus every request field
 * that shapes the response body (profile settings, schedule echo) —
 * anything that can change a single output byte must be in the key.
 *
 * Values are the exact serialized response bodies, so a hit is a
 * byte-for-byte replay of the miss that filled it. The determinism
 * invariant (hit == fresh compile, bit-identical) is enforced by the
 * server's verify mode, on by default in debug builds.
 *
 * Eviction is LRU under a byte budget: lookup refreshes recency,
 * insert evicts from the cold end until the new entry fits. Entries
 * larger than the whole budget are not cached at all.
 */

#ifndef TREEGION_SERVICE_CACHE_H
#define TREEGION_SERVICE_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "ir/function.h"

namespace treegion::service {

/** 128-bit content address of one (function, configuration) pair. */
struct CacheKey
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool
    operator==(const CacheKey &other) const
    {
        return lo == other.lo && hi == other.hi;
    }

    bool
    operator<(const CacheKey &other) const
    {
        return hi != other.hi ? hi < other.hi : lo < other.lo;
    }

    /** Hex rendering, e.g. for logs and the stats endpoint. */
    std::string str() const;
};

/**
 * Parse the 32-hex-digit rendering CacheKey::str() produces (the
 * wire form of the fill verb's fill-key header).
 * @return false when @p hex is not exactly 32 hex digits.
 */
bool parseCacheKeyHex(const std::string &hex, CacheKey *out);

/**
 * @return @p fn printed in canonical textual form (the printer's
 * output, which print->parse->print fixes). This is the function
 * half of every cache key.
 */
std::string canonicalFunctionText(const ir::Function &fn);

/**
 * @return the content address of compiling the function whose
 * canonical text is @p canonical_fn under @p config_fingerprint.
 */
CacheKey makeCacheKey(const std::string &canonical_fn,
                      const std::string &config_fingerprint);

/** LRU cache of serialized compile results under a byte budget. */
class CompileCache
{
  public:
    /** Point-in-time counters (monotonic except bytes/entries). */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        size_t bytes = 0;    ///< payload bytes currently held
        size_t entries = 0;  ///< entries currently held
    };

    /** @param max_bytes payload byte budget; 0 disables caching. */
    explicit CompileCache(size_t max_bytes) : max_bytes_(max_bytes) {}

    /**
     * @return the payload stored under @p key (refreshing its
     * recency), or nullopt on a miss. Counts a hit or a miss.
     */
    std::optional<std::string> lookup(const CacheKey &key);

    /**
     * Store @p payload under @p key, evicting least-recently-used
     * entries until it fits. Re-inserting an existing key refreshes
     * the payload and recency. Payloads over the whole budget are
     * dropped (counted as neither insertion nor eviction).
     */
    void insert(const CacheKey &key, std::string payload);

    /** @return a consistent snapshot of the counters. */
    Stats stats() const;

    /** @return the configured byte budget. */
    size_t maxBytes() const { return max_bytes_; }

    /** Drop every entry (counters keep their totals). */
    void clear();

  private:
    struct Entry
    {
        CacheKey key;
        std::string payload;
    };

    void evictUntilFits(size_t incoming_bytes);

    mutable std::mutex mutex_;
    std::list<Entry> lru_;  ///< front = most recently used
    std::map<CacheKey, std::list<Entry>::iterator> index_;
    size_t bytes_ = 0;
    const size_t max_bytes_;
    Stats counters_;
};

} // namespace treegion::service

#endif // TREEGION_SERVICE_CACHE_H
