#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ir/parser.h"
#include "ir/verifier.h"
#include "sched/list_scheduler.h"
#include "sched/pipeline.h"
#include "sched/schedule_verifier.h"
#include "support/logging.h"
#include "support/remarks.h"
#include "support/string_utils.h"
#include "support/trace.h"
#include "workloads/profiler.h"

namespace treegion::service {

namespace {

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Response
makeError(const char *status, std::string detail)
{
    Response resp;
    resp.status = status;
    resp.error = std::move(detail);
    return resp;
}

/** "requests_<status>" with '-' mapped to '_'. */
std::string
statusCounterName(const std::string &status)
{
    std::string name = "requests_" + status;
    std::replace(name.begin(), name.end(), '-', '_');
    return name;
}

/**
 * Compile @p fn under @p options as @p req asks and render the
 * deterministic result report — the bytes the cache stores. The
 * input function is never mutated (profile and pipeline both work on
 * private clones), so verify mode can call this a second time and
 * demand bit-identical output. Wall time goes to @p compile_ms, NOT
 * into the body: it differs run to run, the body must not.
 */
std::string
compileBody(const ir::Function &fn, size_t mem_words,
            const sched::PipelineOptions &options, const Request &req,
            double *compile_ms)
{
    const auto start = std::chrono::steady_clock::now();

    ir::Function work = fn.clone();
    if (req.profile) {
        workloads::ProfileOptions prof;
        prof.input_seed = req.profile_seed;
        prof.runs = req.profile_runs;
        workloads::profileFunction(work, mem_words, prof);
    }
    const sched::ClonedPipelineRun run =
        sched::runPipelineOnClone(work, options);
    const auto problems = sched::verifyFunctionSchedule(
        run.result.schedule, options.model.issue_width);

    if (compile_ms) {
        *compile_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    }

    std::ostringstream body;
    body << "function: " << fn.name() << '\n'
         << "options: " << encodePipelineOptions(options) << '\n'
         << "regions: " << run.result.schedule.regions.size() << '\n'
         << support::strprintf("cycles: %.17g\n",
                               run.result.estimated_time)
         << support::strprintf("expansion: %.17g\n",
                               run.result.code_expansion)
         << "renamed: " << run.result.total_sched_stats.renamed_defs
         << '\n'
         << "exit-copies: "
         << run.result.total_sched_stats.exit_copies << '\n'
         << "speculated: "
         << run.result.total_sched_stats.speculated_ops << '\n'
         << "elided: " << run.result.total_sched_stats.elided_ops
         << '\n';
    if (problems.empty()) {
        body << "verify: ok\n";
    } else {
        body << "verify: " << problems.size()
             << " problems (first: " << problems.front() << ")\n";
    }
    if (req.want_schedule) {
        body << "schedule:\n";
        for (const auto &[root, rs] : run.result.schedule.regions) {
            body << "-- region bb" << root << " (" << rs.length
                 << " cycles)\n"
                 << rs.str(options.model.issue_width);
        }
    }
    return body.str();
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_bytes)
{
}

Server::~Server()
{
    if (started_.load()) {
        requestStop();
        waitUntilStopped();
    }
}

bool
Server::start(std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why + ": " + std::strerror(errno);
        if (unix_fd_ >= 0)
            ::close(unix_fd_);
        if (tcp_fd_ >= 0)
            ::close(tcp_fd_);
        unix_fd_ = tcp_fd_ = -1;
        return false;
    };

    TG_ASSERT(!started_.load());
    if (options_.unix_path.empty() && options_.tcp_port < 0) {
        if (error)
            *error = "no listener configured (need a unix path or a "
                     "tcp port)";
        return false;
    }

    if (!options_.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
            if (error)
                *error = "unix socket path too long: " +
                         options_.unix_path;
            return false;
        }
        std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(options_.unix_path.c_str());
        unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unix_fd_ < 0)
            return fail("socket(unix)");
        if (::bind(unix_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("bind(" + options_.unix_path + ")");
        if (::listen(unix_fd_, 64) != 0)
            return fail("listen(unix)");
    }

    if (options_.tcp_port >= 0) {
        tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcp_fd_ < 0)
            return fail("socket(tcp)");
        const int one = 1;
        ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<uint16_t>(options_.tcp_port));
        if (::inet_pton(AF_INET, options_.tcp_host.c_str(),
                        &addr.sin_addr) != 1) {
            if (error)
                *error = "bad tcp host: " + options_.tcp_host;
            return fail("inet_pton");
        }
        if (::bind(tcp_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail(support::strprintf("bind(port %d)",
                                           options_.tcp_port));
        if (::listen(tcp_fd_, 64) != 0)
            return fail("listen(tcp)");
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(tcp_fd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            tcp_port_ = ntohs(bound.sin_port);
    }

    if (::pipe(stop_pipe_) != 0)
        return fail("pipe");

    if (!options_.trace_path.empty())
        support::TraceCollector::instance().setEnabled(true);

    pool_ = std::make_unique<support::ThreadPool>(options_.threads);
    started_.store(true);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::requestStop()
{
    // Async-signal-safe by design: one atomic store, one write().
    stopping_.store(true);
    if (stop_pipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(stop_pipe_[1], &byte, 1);
    }
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd fds[3];
        nfds_t nfds = 0;
        int unix_slot = -1, tcp_slot = -1;
        if (unix_fd_ >= 0) {
            unix_slot = static_cast<int>(nfds);
            fds[nfds++] = {unix_fd_, POLLIN, 0};
        }
        if (tcp_fd_ >= 0) {
            tcp_slot = static_cast<int>(nfds);
            fds[nfds++] = {tcp_fd_, POLLIN, 0};
        }
        fds[nfds++] = {stop_pipe_[0], POLLIN, 0};

        if (::poll(fds, nfds, -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[nfds - 1].revents & POLLIN)
            break;  // stop byte

        for (const int slot : {unix_slot, tcp_slot}) {
            if (slot < 0 || !(fds[slot].revents & POLLIN))
                continue;
            const int listener =
                slot == unix_slot ? unix_fd_ : tcp_fd_;
            const int fd = ::accept(listener, nullptr, nullptr);
            if (fd < 0)
                continue;

            std::lock_guard<std::mutex> lock(conn_mutex_);
            // Reap finished connection threads so a long-lived
            // server doesn't accumulate them.
            for (auto it = connections_.begin();
                 it != connections_.end();) {
                if (it->done.load() && it->thread.joinable()) {
                    it->thread.join();
                    it = connections_.erase(it);
                } else {
                    ++it;
                }
            }
            if (connections_.size() >= options_.max_connections) {
                metrics_.add("connections_rejected");
                Response resp = makeError(status::kRejected,
                                          "too many connections");
                resp.retry_after_ms = retryAfterHintMs();
                std::string err;
                writeFrame(fd, encodeResponse(resp), &err);
                ::close(fd);
                continue;
            }
            metrics_.add("connections_accepted");
            connections_.emplace_back();
            Connection *conn = &connections_.back();
            conn->fd = fd;
            conn->thread =
                std::thread([this, conn] { serveConnection(conn); });
        }
    }

    if (unix_fd_ >= 0) {
        ::close(unix_fd_);
        ::unlink(options_.unix_path.c_str());
        unix_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
        tcp_fd_ = -1;
    }
}

void
Server::serveConnection(Connection *conn)
{
    const int fd = conn->fd;
    for (;;) {
        std::string payload, detail, http_target;
        const FrameStatus st =
            readFrame(fd, &payload, options_.max_frame_bytes, &detail,
                      &http_target);
        if (st == FrameStatus::Closed || st == FrameStatus::Error)
            break;

        if (st == FrameStatus::Http) {
            // One-shot HTTP: serve /stats JSON and close, so curl
            // and load-balancer health checks need no client.
            metrics_.add("http_requests");
            const bool found =
                http_target == "/stats" || http_target == "/stats/";
            const std::string body =
                found ? statsJson()
                      : std::string("{\"error\":\"not found\"}");
            const std::string head = support::strprintf(
                "HTTP/1.0 %s\r\nContent-Type: application/json\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                found ? "200 OK" : "404 Not Found", body.size());
            const std::string http = head + body;
            // Raw HTTP, not a frame; best effort — the connection
            // closes either way.
            if (::send(fd, http.data(), http.size(),
                       MSG_NOSIGNAL) < 0)
                metrics_.add("http_write_errors");
            break;
        }

        if (st == FrameStatus::TooLarge) {
            // The stream can't be resynchronized after an oversized
            // length prefix: answer once and drop the connection.
            metrics_.add("requests_total");
            metrics_.add("oversized_frames");
            Response resp = makeError(status::kRejected, detail);
            metrics_.add(statusCounterName(resp.status));
            std::string err;
            writeFrame(fd, encodeResponse(resp), &err);
            break;
        }

        Request req;
        Response resp;
        if (!parseRequest(payload, req, &detail)) {
            metrics_.add("requests_total");
            resp = makeError(status::kError, detail);
            metrics_.add(statusCounterName(resp.status));
        } else {
            resp = handle(req);
        }
        std::string err;
        if (!writeFrame(fd, encodeResponse(resp), &err)) {
            metrics_.add("response_write_errors");
            break;
        }
    }
    ::close(fd);
    // No lock: the entry outlives the thread (reaper and drain only
    // erase after joining), and done is atomic.
    conn->done.store(true);
}

Response
Server::handle(const Request &req)
{
    const int64_t start_ms = nowMs();
    metrics_.add("requests_total");

    Response resp;
    if (req.verb == "ping") {
        resp.body = "pong\n";
    } else if (req.verb == "stats") {
        resp.body = statsJson();
    } else {
        resp = handleCompile(req);
    }

    metrics_.add(statusCounterName(resp.status));
    metrics_.observe("request_ms",
                     static_cast<double>(nowMs() - start_ms));
    return resp;
}

Response
Server::handleCompile(const Request &req)
{
    if (stopping_.load())
        return makeError(status::kShuttingDown,
                         "server is draining");

    // Admission control: never let the queue grow past queue_limit —
    // answer with backpressure and a retry hint instead.
    size_t admitted = admitted_.load();
    do {
        if (admitted >= options_.queue_limit) {
            metrics_.add("backpressure_rejections");
            Response resp = makeError(
                status::kRejected,
                support::strprintf("queue full (%zu in flight)",
                                   admitted));
            resp.retry_after_ms = retryAfterHintMs();
            return resp;
        }
    } while (!admitted_.compare_exchange_weak(admitted, admitted + 1));

    const int64_t enqueue_ms = nowMs();
    auto future = pool_->submit([this, &req, enqueue_ms] {
        if (options_.debug_queue_delay_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                options_.debug_queue_delay_ms));
        }
        const int64_t waited_ms = nowMs() - enqueue_ms;
        metrics_.observe("queue_wait_ms",
                         static_cast<double>(waited_ms));

        Response resp;
        if (req.deadline_ms > 0 && waited_ms > req.deadline_ms) {
            // The client's deadline passed while the request sat in
            // the queue: cancel instead of doing stale work.
            resp = makeError(
                status::kDeadline,
                support::strprintf(
                    "queued %lld ms past the %lld ms deadline",
                    static_cast<long long>(waited_ms),
                    static_cast<long long>(req.deadline_ms)));
        } else {
            resp = compileNow(req);
        }
        admitted_.fetch_sub(1);
        return resp;
    });
    return future.get();
}

Response
Server::compileNow(const Request &req)
{
    support::TraceScope span("request", "service");

    std::string parse_error;
    std::unique_ptr<ir::Module> mod =
        ir::parseModule(req.module_text, &parse_error);
    if (!mod)
        return makeError(status::kError,
                         "parse error: " + parse_error);
    if (mod->functions().empty())
        return makeError(status::kError, "module has no functions");

    ir::Function *fn = nullptr;
    if (req.function.empty()) {
        fn = mod->functions().front().get();
    } else if (mod->hasFunction(req.function)) {
        fn = &mod->function(req.function);
    } else {
        return makeError(status::kError,
                         "no function named '" + req.function + "'");
    }
    span.arg("fn", fn->name());

    sched::PipelineOptions options;
    std::string options_error;
    if (!parsePipelineOptions(req.options, options, &options_error))
        return makeError(status::kError,
                         "bad options: " + options_error);

    {
        const auto problems =
            ir::verifyFunction(*fn, ir::VerifyLevel::Schedulable);
        if (!problems.empty())
            return makeError(status::kError,
                             "verifier: " + problems.front());
    }

    // Content address: canonical (printed) function text, so
    // submissions that differ only in formatting share an entry,
    // plus every request field that shapes the body.
    const std::string canonical = canonicalFunctionText(*fn);
    const CacheKey key =
        makeCacheKey(canonical, req.configFingerprint());

    const bool use_cache = options_.cache_bytes > 0 && !req.no_cache;
    if (use_cache) {
        if (std::optional<std::string> hit = cache_.lookup(key)) {
            Response resp;
            resp.cached = true;
            resp.body = std::move(*hit);
            if (options_.verify_hits) {
                // Determinism invariant: a cached result must be
                // bit-identical to a fresh compile of the same
                // request.
                double fresh_ms = 0.0;
                const std::string fresh = compileBody(
                    *fn, mod->memWords(), options, req, &fresh_ms);
                if (fresh != resp.body) {
                    metrics_.add("cache_verify_mismatches");
                    TG_PANIC("compile cache verify mismatch for key "
                             "%s (cached %zu bytes, fresh %zu bytes)",
                             key.str().c_str(), resp.body.size(),
                             fresh.size());
                }
                metrics_.add("cache_verified_hits");
            }
            return resp;
        }
    }

    Response resp;
    {
        // Decision-mix telemetry for /stats: collect this compile's
        // remarks and fold them into the per-kind counters. Miss path
        // only — the verify_hits recompile above must not count the
        // same decisions twice.
        support::RemarkStream remarks;
        support::RemarkScope scope(&remarks);
        resp.body = compileBody(*fn, mod->memWords(), options, req,
                                &resp.compile_ms);
        remarks.foldInto(metrics_);
    }
    metrics_.observe("compile_ms", resp.compile_ms);
    // Scheduler arena gauges (sched.arena.*) for /stats: refreshed
    // after every compile so the snapshot tracks the warm footprint.
    sched::reportArenaMetrics(metrics_);
    if (use_cache) {
        cache_.insert(key, resp.body);
        const CompileCache::Stats cs = cache_.stats();
        metrics_.set("cache_bytes", cs.bytes);
        metrics_.set("cache_entries", cs.entries);
    }
    return resp;
}

int64_t
Server::retryAfterHintMs() const
{
    // Suggest roughly one median request service time, bounded so a
    // cold histogram still gives a sane hint.
    const double p50 = metrics_.histogram("request_ms").p50();
    return std::min<int64_t>(
        1000, std::max<int64_t>(10, static_cast<int64_t>(p50)));
}

std::string
Server::statsJson() const
{
    const CompileCache::Stats cs = cache_.stats();
    std::ostringstream os;
    os << "{\"metrics\":" << metrics_.toJson() << ",\"cache\":"
       << support::strprintf(
              "{\"hits\":%llu,\"misses\":%llu,\"insertions\":%llu,"
              "\"evictions\":%llu,\"bytes\":%zu,\"entries\":%zu,"
              "\"max_bytes\":%zu}",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.insertions),
              static_cast<unsigned long long>(cs.evictions), cs.bytes,
              cs.entries, cache_.maxBytes())
       << ",\"server\":"
       << support::strprintf(
              "{\"threads\":%zu,\"queue_limit\":%zu,"
              "\"max_connections\":%zu,\"max_frame_bytes\":%zu,"
              "\"draining\":%s}",
              pool_ ? pool_->numThreads() : options_.threads,
              options_.queue_limit, options_.max_connections,
              options_.max_frame_bytes,
              stopping_.load() ? "true" : "false")
       << "}";
    return os.str();
}

void
Server::waitUntilStopped()
{
    if (joined_.exchange(true))
        return;
    if (accept_thread_.joinable())
        accept_thread_.join();

    // The accept thread is gone, so the connection list is stable
    // from here on. Unblock threads parked in readFrame; ones busy
    // compiling finish their response first (SHUT_RD leaves the
    // write side open). Entries are only destroyed after their
    // thread is joined.
    for (Connection &conn : connections_) {
        if (!conn.done.load())
            ::shutdown(conn.fd, SHUT_RD);
    }
    for (Connection &conn : connections_) {
        if (conn.thread.joinable())
            conn.thread.join();
    }
    connections_.clear();

    pool_.reset();  // finishes anything still queued
    flushOnDrain();

    if (stop_pipe_[0] >= 0)
        ::close(stop_pipe_[0]);
    if (stop_pipe_[1] >= 0)
        ::close(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    started_.store(false);
}

void
Server::flushOnDrain()
{
    if (!options_.metrics_path.empty()) {
        if (FILE *f = std::fopen(options_.metrics_path.c_str(), "w")) {
            const std::string json = statsJson();
            std::fwrite(json.data(), 1, json.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
        } else {
            TG_INFO("cannot write metrics to %s\n",
                    options_.metrics_path.c_str());
        }
    }
    if (!options_.trace_path.empty()) {
        auto &collector = support::TraceCollector::instance();
        if (!collector.writeChromeTraceFile(options_.trace_path))
            TG_INFO("cannot write trace to %s\n",
                    options_.trace_path.c_str());
        collector.clear();
    }
}

} // namespace treegion::service
