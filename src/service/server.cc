#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ir/parser.h"
#include "ir/verifier.h"
#include "sched/list_scheduler.h"
#include "sched/mem_estimate.h"
#include "sched/pipeline.h"
#include "sched/schedule_verifier.h"
#include "support/build_info.h"
#include "support/flightrec.h"
#include "support/logging.h"
#include "support/remarks.h"
#include "support/spans.h"
#include "support/string_utils.h"
#include "support/trace.h"
#include "workloads/profiler.h"

namespace treegion::service {

namespace {

/** epoll identities of the non-connection fds. */
constexpr uint64_t kUnixTag = 1;
constexpr uint64_t kTcpTag = 2;
constexpr uint64_t kStopTag = 3;
constexpr uint64_t kWakeTag = 4;

/** Most an oversized frame is drained before giving up (64 MiB). */
constexpr size_t kMaxDrainBytes = 64u << 20;

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Response
makeError(const char *status, std::string detail)
{
    Response resp;
    resp.status = status;
    resp.error = std::move(detail);
    return resp;
}

/** "requests_<status>" with '-' mapped to '_'. */
std::string
statusCounterName(const std::string &status)
{
    std::string name = "requests_" + status;
    std::replace(name.begin(), name.end(), '-', '_');
    return name;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Empty a self-pipe (level-triggered epoll would re-fire). */
void
drainPipe(int fd)
{
    char buf[64];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
}

/**
 * Compile @p fn under @p options as @p req asks and render the
 * deterministic result report — the bytes the cache stores. The
 * input function is never mutated (profile and pipeline both work on
 * private clones), so verify mode can call this a second time and
 * demand bit-identical output. Wall time goes to @p compile_ms, NOT
 * into the body: it differs run to run, the body must not.
 */
std::string
compileBody(const ir::Function &fn, size_t mem_words,
            const sched::PipelineOptions &options, const Request &req,
            double *compile_ms)
{
    const auto start = std::chrono::steady_clock::now();

    ir::Function work = fn.clone();
    if (req.profile) {
        workloads::ProfileOptions prof;
        prof.input_seed = req.profile_seed;
        prof.runs = req.profile_runs;
        workloads::profileFunction(work, mem_words, prof);
    }
    const sched::ClonedPipelineRun run =
        sched::runPipelineOnClone(work, options);
    const auto problems = sched::verifyFunctionSchedule(
        run.result.schedule, options.model.issue_width);

    if (compile_ms) {
        *compile_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    }

    std::ostringstream body;
    body << "function: " << fn.name() << '\n'
         << "options: " << encodePipelineOptions(options) << '\n'
         << "regions: " << run.result.schedule.regions.size() << '\n'
         << support::strprintf("cycles: %.17g\n",
                               run.result.estimated_time)
         << support::strprintf("expansion: %.17g\n",
                               run.result.code_expansion)
         << "renamed: " << run.result.total_sched_stats.renamed_defs
         << '\n'
         << "exit-copies: "
         << run.result.total_sched_stats.exit_copies << '\n'
         << "speculated: "
         << run.result.total_sched_stats.speculated_ops << '\n'
         << "elided: " << run.result.total_sched_stats.elided_ops
         << '\n';
    if (problems.empty()) {
        body << "verify: ok\n";
    } else {
        body << "verify: " << problems.size()
             << " problems (first: " << problems.front() << ")\n";
    }
    if (req.want_schedule) {
        body << "schedule:\n";
        for (const auto &[root, rs] : run.result.schedule.regions) {
            body << "-- region bb" << root << " (" << rs.length
                 << " cycles)\n"
                 << rs.str(options.model.issue_width);
        }
    }
    return body.str();
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      span_service_(options_.self_address.empty()
                        ? "treegiond"
                        : options_.self_address),
      cache_(options_.cache_bytes)
{
}

/**
 * Parse the propagated `trace-id`/`parent-span` headers of @p req
 * into a sampled context stamped with @p service. Invalid (so every
 * span site stays inert) when either header is absent or malformed —
 * unsampled traces propagate nothing, so presence means sampled.
 */
static support::SpanContext
incomingTraceContext(const Request &req, const std::string &service)
{
    support::SpanContext ctx;
    if (!req.trace_id.empty() &&
        support::parseTraceIdHex(req.trace_id, &ctx.trace_hi,
                                 &ctx.trace_lo) &&
        support::parseSpanIdHex(req.parent_span, &ctx.span)) {
        ctx.sampled = true;
        ctx.service = service.c_str();
    } else {
        ctx = support::SpanContext{};
    }
    return ctx;
}

Server::~Server()
{
    if (started_.load()) {
        requestStop();
        waitUntilStopped();
    }
}

bool
Server::start(std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why + ": " + std::strerror(errno);
        if (unix_fd_ >= 0)
            ::close(unix_fd_);
        if (tcp_fd_ >= 0)
            ::close(tcp_fd_);
        if (epoll_fd_ >= 0)
            ::close(epoll_fd_);
        unix_fd_ = tcp_fd_ = epoll_fd_ = -1;
        return false;
    };

    TG_ASSERT(!started_.load());
    if (options_.unix_path.empty() && options_.tcp_port < 0) {
        if (error)
            *error = "no listener configured (need a unix path or a "
                     "tcp port)";
        return false;
    }

    if (!options_.peers.empty()) {
        const auto self = std::find(options_.peers.begin(),
                                    options_.peers.end(),
                                    options_.self_address);
        if (options_.self_address.empty() ||
            self == options_.peers.end()) {
            if (error)
                *error = "cluster self address '" +
                         options_.self_address +
                         "' is not in the peer list";
            return false;
        }
        self_index_ = static_cast<size_t>(
            self - options_.peers.begin());
        cluster_ = HashRing(options_.peers);
        peer_dead_ = std::make_unique<std::atomic<bool>[]>(
            options_.peers.size());
        for (size_t i = 0; i < options_.peers.size(); ++i)
            peer_dead_[i].store(false);
    }

    if (!options_.unix_path.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
            if (error)
                *error = "unix socket path too long: " +
                         options_.unix_path;
            return false;
        }
        std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(options_.unix_path.c_str());
        unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unix_fd_ < 0)
            return fail("socket(unix)");
        if (::bind(unix_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("bind(" + options_.unix_path + ")");
        if (::listen(unix_fd_, 64) != 0)
            return fail("listen(unix)");
        if (!setNonBlocking(unix_fd_))
            return fail("nonblock(unix)");
    }

    if (options_.tcp_port >= 0) {
        tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcp_fd_ < 0)
            return fail("socket(tcp)");
        const int one = 1;
        ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<uint16_t>(options_.tcp_port));
        if (::inet_pton(AF_INET, options_.tcp_host.c_str(),
                        &addr.sin_addr) != 1) {
            if (error)
                *error = "bad tcp host: " + options_.tcp_host;
            return fail("inet_pton");
        }
        if (::bind(tcp_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail(support::strprintf("bind(port %d)",
                                           options_.tcp_port));
        if (::listen(tcp_fd_, 64) != 0)
            return fail("listen(tcp)");
        if (!setNonBlocking(tcp_fd_))
            return fail("nonblock(tcp)");
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(tcp_fd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            tcp_port_ = ntohs(bound.sin_port);
    }

    if (::pipe(stop_pipe_) != 0)
        return fail("pipe(stop)");
    if (::pipe(wake_pipe_) != 0)
        return fail("pipe(wake)");
    setNonBlocking(stop_pipe_[0]);
    setNonBlocking(wake_pipe_[0]);
    setNonBlocking(wake_pipe_[1]);

    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0)
        return fail("epoll_create1");
    auto watch = [&](int fd, uint64_t tag) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = tag;
        return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
    };
    if (unix_fd_ >= 0 && !watch(unix_fd_, kUnixTag))
        return fail("epoll_ctl(unix)");
    if (tcp_fd_ >= 0 && !watch(tcp_fd_, kTcpTag))
        return fail("epoll_ctl(tcp)");
    if (!watch(stop_pipe_[0], kStopTag) ||
        !watch(wake_pipe_[0], kWakeTag))
        return fail("epoll_ctl(pipe)");

    if (!options_.trace_path.empty())
        support::TraceCollector::instance().setEnabled(true);
    if (!options_.span_path.empty())
        support::SpanCollector::instance().configure(
            options_.span_sample);
    if (!options_.flightrec_path.empty())
        support::flightrec::setDumpPath(
            options_.flightrec_path.c_str());

    pool_ = std::make_unique<support::ThreadPool>(options_.threads);
    started_.store(true);
    loop_thread_ = std::thread([this] { eventLoop(); });
    return true;
}

void
Server::requestStop()
{
    // Async-signal-safe by design: one atomic store, one write().
    stopping_.store(true);
    if (stop_pipe_[1] >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(stop_pipe_[1], &byte, 1);
    }
}

bool
Server::shouldExitLoop() const
{
    if (!hard_stop_.load())
        return false;
    if (!conns_.empty() || jobs_inflight_.load() != 0)
        return false;
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex &>(completions_mutex_));
    return completions_.empty();
}

void
Server::eventLoop()
{
    bool listeners_open = true;
    bool hard_draining = false;

    auto closeListeners = [&] {
        if (!listeners_open)
            return;
        listeners_open = false;
        if (unix_fd_ >= 0) {
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, unix_fd_, nullptr);
            ::close(unix_fd_);
            ::unlink(options_.unix_path.c_str());
            unix_fd_ = -1;
        }
        if (tcp_fd_ >= 0) {
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, tcp_fd_, nullptr);
            ::close(tcp_fd_);
            tcp_fd_ = -1;
        }
    };

    while (!shouldExitLoop()) {
        epoll_event events[64];
        const int n =
            ::epoll_wait(epoll_fd_, events, 64, /*timeout=*/-1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const uint64_t tag = events[i].data.u64;
            if (tag == kStopTag) {
                drainPipe(stop_pipe_[0]);
                continue;  // stopping_ is handled below
            }
            if (tag == kWakeTag) {
                drainPipe(wake_pipe_[0]);
                drainCompletions();
                continue;
            }
            if (tag == kUnixTag || tag == kTcpTag) {
                if (listeners_open)
                    acceptPending(tag == kUnixTag ? unix_fd_
                                                  : tcp_fd_);
                continue;
            }
            // A connection. It may have been closed by an earlier
            // event in this batch — look it up fresh per action.
            if (events[i].events & EPOLLOUT) {
                auto it = conns_.find(tag);
                if (it != conns_.end())
                    onWritable(*it->second);
            }
            if (events[i].events &
                (EPOLLIN | EPOLLHUP | EPOLLERR)) {
                auto it = conns_.find(tag);
                if (it != conns_.end())
                    onReadable(*it->second);
            }
        }

        if (stopping_.load())
            closeListeners();
        if (hard_stop_.load() && !hard_draining) {
            hard_draining = true;
            // Stop reading: in-flight work still finishes and every
            // finished response is flushed before its connection
            // closes (the write side stays open, as the threaded
            // server's SHUT_RD drain did).
            std::vector<uint64_t> ids;
            ids.reserve(conns_.size());
            for (const auto &[id, conn] : conns_)
                ids.push_back(id);
            for (const uint64_t id : ids) {
                auto it = conns_.find(id);
                if (it == conns_.end())
                    continue;
                Conn &conn = *it->second;
                ::shutdown(conn.fd, SHUT_RD);
                conn.read_eof = true;
                conn.in.clear();
                conn.want_close = true;
                if (conn.inflight == 0 && conn.done.empty() &&
                    conn.out_off >= conn.out.size())
                    closeConn(conn);
            }
        }
    }

    closeListeners();
    // Anything still registered (e.g. the loop broke on an epoll
    // error) is closed so fds never leak.
    std::vector<uint64_t> ids;
    for (const auto &[id, conn] : conns_)
        ids.push_back(id);
    for (const uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it != conns_.end())
            closeConn(*it->second);
    }
}

void
Server::acceptPending(int listener_fd)
{
    for (;;) {
        const int fd = ::accept(listener_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // EAGAIN or a transient error: epoll re-fires
        }
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }

        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = next_conn_id_++;

        if (counted_conns_ >= options_.max_connections) {
            metrics_.add("connections_rejected");
            conn->counted = false;
            conn->want_close = true;
            Response resp = makeError(status::kRejected,
                                      "too many connections");
            resp.retry_after_ms = retryAfterHintMs();
            Conn &ref = *conn;
            conns_.emplace(ref.id, std::move(conn));
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.u64 = ref.id;
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
            queueResponse(ref, ref.next_seq++, resp);
            continue;
        }

        metrics_.add("connections_accepted");
        ++counted_conns_;
        Conn &ref = *conn;
        conns_.emplace(ref.id, std::move(conn));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = ref.id;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    }
}

void
Server::closeConn(Conn &conn)
{
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    if (conn.counted)
        --counted_conns_;
    conns_.erase(conn.id);  // destroys conn
}

void
Server::updateEpollOut(Conn &conn)
{
    const bool want = conn.out_off < conn.out.size();
    if (want == conn.epollout)
        return;
    conn.epollout = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
Server::onReadable(Conn &conn)
{
    char buf[16384];
    for (;;) {
        const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n > 0) {
            if (conn.drain_left > 0) {
                // Mid-discard of an oversized frame: bytes bypass
                // the buffer entirely.
                const size_t eat = std::min(
                    conn.drain_left, static_cast<size_t>(n));
                conn.drain_left -= eat;
                if (conn.drain_left == 0)
                    conn.want_close = true;
                if (eat < static_cast<size_t>(n))
                    conn.in.append(buf + eat,
                                   static_cast<size_t>(n) - eat);
            } else {
                conn.in.append(buf, static_cast<size_t>(n));
            }
            continue;
        }
        if (n == 0) {
            conn.read_eof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeConn(conn);
        return;
    }

    consumeBuffer(conn);
    // consumeBuffer never closes, so conn is still valid here.
    flushWrites(conn);
}

void
Server::onWritable(Conn &conn)
{
    flushWrites(conn);
}

void
Server::consumeBuffer(Conn &conn)
{
    if (hard_stop_.load()) {
        conn.in.clear();
        return;
    }
    for (;;) {
        if (conn.drain_left > 0) {
            const size_t eat =
                std::min(conn.drain_left, conn.in.size());
            conn.in.erase(0, eat);
            conn.drain_left -= eat;
            if (conn.drain_left == 0)
                conn.want_close = true;
            return;  // nothing after an oversized frame is served
        }
        if (conn.want_close)
            return;  // draining out; ignore any further input

        if (conn.http ||
            (conn.in.size() >= 4 &&
             std::memcmp(conn.in.data(), "GET ", 4) == 0)) {
            // One-shot HTTP: serve /stats JSON and close, so curl
            // and load-balancer health checks need no client.
            conn.http = true;
            const bool complete =
                conn.in.find("\r\n\r\n") != std::string::npos ||
                conn.in.find("\n\n") != std::string::npos ||
                conn.in.size() >= 8192 || conn.read_eof;
            if (!complete)
                return;
            metrics_.add("http_requests");
            size_t end = conn.in.find(' ', 4);
            if (end == std::string::npos)
                end = conn.in.find('\n', 4);
            if (end == std::string::npos)
                end = conn.in.size();
            const std::string target = conn.in.substr(4, end - 4);
            conn.in.clear();
            const bool found =
                target == "/stats" || target == "/stats/";
            const std::string body =
                found ? statsJson()
                      : std::string("{\"error\":\"not found\"}");
            conn.out += support::strprintf(
                "HTTP/1.0 %s\r\nContent-Type: application/json\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                found ? "200 OK" : "404 Not Found", body.size());
            conn.out += body;
            conn.want_close = true;
            return;
        }

        if (conn.in.size() < 4)
            return;
        const auto *p =
            reinterpret_cast<const unsigned char *>(conn.in.data());
        const size_t len = (static_cast<size_t>(p[0]) << 24) |
                           (static_cast<size_t>(p[1]) << 16) |
                           (static_cast<size_t>(p[2]) << 8) |
                           static_cast<size_t>(p[3]);
        if (len > options_.max_frame_bytes) {
            // The stream can't be resynchronized after an oversized
            // length prefix: answer once, discard the frame's bytes
            // (so the response isn't RST away from a peer that is
            // still writing), and drop the connection.
            metrics_.add("requests_total");
            metrics_.add("oversized_frames");
            Response resp = makeError(
                status::kRejected,
                support::strprintf("frame of %zu bytes exceeds the "
                                   "%zu-byte limit",
                                   len, options_.max_frame_bytes));
            metrics_.add(statusCounterName(resp.status));
            const size_t cap = std::min(len, kMaxDrainBytes);
            const size_t have =
                std::min(cap, conn.in.size() - 4);
            conn.in.clear();
            conn.drain_left = cap - have;
            queueResponse(conn, conn.next_seq++, resp);
            if (conn.drain_left == 0)
                conn.want_close = true;
            return;
        }
        if (conn.in.size() < 4 + len)
            return;
        std::string payload = conn.in.substr(4, len);
        conn.in.erase(0, 4 + len);
        // Batching: every complete frame in the buffer dispatches in
        // this same pass, so a pipelining client's requests hit the
        // pool together.
        dispatch(conn, std::move(payload));
    }
}

void
Server::dispatch(Conn &conn, std::string payload)
{
    const uint64_t seq = conn.next_seq++;
    Request req;
    std::string detail;
    if (!parseRequest(payload, req, &detail)) {
        metrics_.add("requests_total");
        const Response resp = makeError(status::kError, detail);
        metrics_.add(statusCounterName(resp.status));
        queueResponse(conn, seq, resp);
        return;
    }
    if (req.verb == "compile") {
        dispatchCompile(conn, seq, std::move(req));
        return;
    }
    const int64_t start_ms = nowMs();
    metrics_.add("requests_total");
    const Response resp = handleInline(req);
    metrics_.add(statusCounterName(resp.status));
    metrics_.observe("request_ms",
                     static_cast<double>(nowMs() - start_ms));
    queueResponse(conn, seq, resp);
}

Response
Server::handleInline(const Request &req)
{
    Response resp;
    if (req.verb == "ping") {
        // The wall-clock sample lets clients estimate this server's
        // clock offset (Client::syncClock) so --trace-merge can
        // align span files from different hosts.
        resp.server_time_us = support::epochUs();
        resp.body = "pong\n";
    } else if (req.verb == "stats") {
        resp.body = statsJson();
    } else if (req.verb == "fill") {
        // A peer compiled a key this replica owns (the client was
        // routed elsewhere, or the ring rebalanced) and offers the
        // result. Insertion is idempotent and the payload is as
        // trustworthy as the peer, which shares our binary.
        const support::SpanContextScope ctx_scope(
            incomingTraceContext(req, span_service_));
        support::SpanScope span("fill-apply",
                                support::SpanScope::Root::No,
                                span_service_.c_str());
        CacheKey key;
        if (!parseCacheKeyHex(req.fill_key, &key))
            return makeError(status::kError,
                             "bad fill-key '" + req.fill_key + "'");
        if (span.live()) {
            metrics_.add("spans_fill");
            span.arg("key", req.fill_key);
        }
        metrics_.add("fills_received");
        if (options_.cache_bytes > 0) {
            cache_.insert(key, req.module_text);
            const CompileCache::Stats cs = cache_.stats();
            metrics_.set("cache_bytes", cs.bytes);
            metrics_.set("cache_entries", cs.entries);
        }
        resp.body = "filled\n";
    } else {
        resp = makeError(status::kError,
                         "unknown verb '" + req.verb + "'");
    }
    return resp;
}

void
Server::dispatchCompile(Conn &conn, uint64_t seq, Request req)
{
    const int64_t enqueue_ms = nowMs();
    metrics_.add("requests_total");

    auto answerNow = [&](Response resp) {
        metrics_.add(statusCounterName(resp.status));
        metrics_.observe("request_ms",
                         static_cast<double>(nowMs() - enqueue_ms));
        queueResponse(conn, seq, resp);
    };

    if (stopping_.load()) {
        answerNow(
            makeError(status::kShuttingDown, "server is draining"));
        return;
    }

    // Memory admission: a compile whose projected peak does not fit
    // next to the in-flight total is parked (bounded) instead of
    // dispatched, so the aggregate projection of everything running
    // stays under the budget. Parked compiles re-enter largest-first
    // as finishing compiles release their reservations.
    const uint64_t projected = projectedPeakBytes(req);
    if (projected > 0 && !memFits(projected)) {
        if (mem_parked_.size() >= options_.queue_limit) {
            metrics_.add("mem_rejected");
            Response resp = makeError(
                status::kRejected,
                support::strprintf(
                    "memory budget exhausted (%zu compiles parked)",
                    mem_parked_.size()));
            resp.retry_after_ms = retryAfterHintMs();
            answerNow(std::move(resp));
            return;
        }
        metrics_.add("mem_queued");
        ++conn.inflight;
        jobs_inflight_.fetch_add(1);
        const int64_t park_start_us =
            support::SpanCollector::instance().enabled()
                ? support::epochUs()
                : 0;
        mem_parked_.push_back(
            ParkedCompile{conn.id, seq, enqueue_ms, projected,
                          park_start_us, std::move(req)});
        return;
    }

    if (!submitCompile(conn, seq, enqueue_ms, projected,
                       std::move(req), /*counted=*/false)) {
        // Admission control: never let the queue grow past
        // queue_limit — answer with backpressure and a retry hint.
        metrics_.add("backpressure_rejections");
        Response resp = makeError(
            status::kRejected,
            support::strprintf("queue full (%zu in flight)",
                               admitted_.load()));
        resp.retry_after_ms = retryAfterHintMs();
        answerNow(std::move(resp));
    }
}

uint64_t
Server::projectedPeakBytes(const Request &req) const
{
    if (options_.mem_budget_bytes == 0)
        return 0;
    // A malformed options line projects as the defaults; compileNow
    // answers the parse error either way, cheaply.
    sched::PipelineOptions opts;
    if (!req.options.empty()) {
        std::string error;
        if (!sched::parsePipelineOptions(req.options, opts, &error))
            opts = sched::PipelineOptions{};
    }
    const sched::MemShape shape =
        sched::estimateShapeFromText(req.module_text);
    return sched::estimatePeakBytes(shape, opts);
}

bool
Server::memFits(uint64_t projected) const
{
    // Mirrors support::MemoryGate's progress rule: with nothing
    // reserved, any request fits — an oversized compile runs solo
    // rather than being starved forever.
    return mem_projected_inflight_ == 0 ||
           mem_projected_inflight_ + projected <=
               options_.mem_budget_bytes;
}

bool
Server::submitCompile(Conn &conn, uint64_t seq, int64_t enqueue_ms,
                      uint64_t projected, Request &&req, bool counted,
                      int64_t park_start_us, int64_t park_end_us)
{
    size_t admitted = admitted_.load();
    do {
        if (admitted >= options_.queue_limit)
            return false;
    } while (
        !admitted_.compare_exchange_weak(admitted, admitted + 1));

    if (!counted) {
        ++conn.inflight;
        jobs_inflight_.fetch_add(1);
    }
    if (projected > 0) {
        mem_projected_inflight_ += projected;
        metrics_.set("mem_projected_bytes", mem_projected_inflight_);
    }
    const uint64_t conn_id = conn.id;
    pool_->submit([this, conn_id, seq, enqueue_ms, projected,
                   park_start_us, park_end_us,
                   req = std::move(req)]() mutable {
        if (options_.debug_queue_delay_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                options_.debug_queue_delay_ms));
        }
        const int64_t waited_ms = nowMs() - enqueue_ms;
        metrics_.observe("queue_wait_ms",
                         static_cast<double>(waited_ms));
        support::flightrec::note("compile",
                                 req.function.empty()
                                     ? "<first-fn>"
                                     : req.function.c_str(),
                                 seq, projected);

        // Join the caller's trace when the request carried one;
        // otherwise root a fresh server-local trace (sampled per
        // span_sample). Everything below — the pipeline stages'
        // TraceScopes, cache lookups, fill sends — nests under this
        // span through the ambient context.
        const support::SpanContextScope ctx_scope(
            incomingTraceContext(req, span_service_));
        support::SpanScope root("request",
                                support::SpanScope::Root::IfEnabled,
                                span_service_.c_str());
        if (root.live()) {
            metrics_.add("spans_compile");
            root.arg("verb", req.verb);
            const int64_t now_us = support::epochUs();
            support::noteSpan(root.context(), "queue-wait",
                              now_us - waited_ms * 1000, now_us);
            if (park_start_us > 0 && park_end_us > park_start_us)
                support::noteSpan(root.context(), "mem-gate-park",
                                  park_start_us, park_end_us);
        }

        Response resp;
        if (req.deadline_ms > 0 && waited_ms > req.deadline_ms) {
            // The client's deadline passed while the request sat in
            // the queue: cancel instead of doing stale work.
            resp = makeError(
                status::kDeadline,
                support::strprintf(
                    "queued %lld ms past the %lld ms deadline",
                    static_cast<long long>(waited_ms),
                    static_cast<long long>(req.deadline_ms)));
        } else {
            resp = compileNow(req);
        }
        admitted_.fetch_sub(1);
        metrics_.add(statusCounterName(resp.status));
        metrics_.observe("request_ms",
                         static_cast<double>(nowMs() - enqueue_ms));
        if (root.live())
            root.arg("status", resp.status);

        Completion done{conn_id, seq, encodeResponse(resp),
                        projected, support::SpanContext{}, 0};
        if (root.live()) {
            // Close the request span before handing off: the recorded
            // interval should end when the response leaves this
            // worker, not when the lambda finishes tearing down.
            root.finish();
            done.trace = root.context();
            done.posted_us = support::epochUs();
        }
        {
            std::lock_guard<std::mutex> lock(completions_mutex_);
            completions_.push_back(std::move(done));
        }
        jobs_inflight_.fetch_sub(1);
        const char byte = 'w';
        [[maybe_unused]] const ssize_t n =
            ::write(wake_pipe_[1], &byte, 1);
    });
    return true;
}

void
Server::admitParked()
{
    // Largest-projected-first among the compiles that fit — the same
    // ROMA ordering as the driver's gate; the stable sort keeps
    // equal projections in arrival order. Entries that still don't
    // fit (or find the pool queue full) stay parked and retry on the
    // next completion.
    std::stable_sort(
        mem_parked_.begin(), mem_parked_.end(),
        [](const ParkedCompile &a, const ParkedCompile &b) {
            return a.projected > b.projected;
        });
    const int64_t unpark_us =
        support::SpanCollector::instance().enabled()
            ? support::epochUs()
            : 0;
    for (size_t i = 0; i < mem_parked_.size();) {
        ParkedCompile &parked = mem_parked_[i];
        auto it = conns_.find(parked.conn_id);
        if (it == conns_.end()) {
            // The peer vanished while parked: drop the compile. Its
            // conn.inflight count died with the connection; the
            // loop-liveness count is still ours to return.
            jobs_inflight_.fetch_sub(1);
            mem_parked_.erase(mem_parked_.begin() + i);
            continue;
        }
        if (memFits(parked.projected) &&
            submitCompile(*it->second, parked.seq, parked.enqueue_ms,
                          parked.projected, std::move(parked.req),
                          /*counted=*/true, parked.park_start_us,
                          unpark_us)) {
            mem_parked_.erase(mem_parked_.begin() + i);
        } else {
            ++i;
        }
    }
}

void
Server::drainCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        batch.swap(completions_);
    }
    for (Completion &done : batch) {
        if (done.projected > 0) {
            // Release the memory reservation even when the peer
            // vanished — the compile ran and its footprint is gone.
            TG_ASSERT(mem_projected_inflight_ >= done.projected);
            mem_projected_inflight_ -= done.projected;
            metrics_.set("mem_projected_bytes",
                         mem_projected_inflight_);
        }
        auto it = conns_.find(done.conn_id);
        if (it == conns_.end())
            continue;  // the peer vanished mid-compile
        Conn &conn = *it->second;
        TG_ASSERT(conn.inflight > 0);
        --conn.inflight;
        queueRaw(conn, done.seq, std::move(done.encoded));
        auto again = conns_.find(done.conn_id);
        if (again != conns_.end())
            flushWrites(*again->second);
        // Completion-post to write-queued (and flushed as far as the
        // kernel allowed), under the request's own span.
        if (done.trace.valid() && done.trace.sampled)
            support::noteSpan(done.trace, "response-write",
                              done.posted_us, support::epochUs());
    }
    if (!mem_parked_.empty())
        admitParked();
}

void
Server::queueResponse(Conn &conn, uint64_t seq,
                      const Response &resp)
{
    queueRaw(conn, seq, encodeResponse(resp));
    flushWrites(conn);
}

void
Server::queueRaw(Conn &conn, uint64_t seq, std::string encoded)
{
    // Responses go out in request order, whatever order the pool
    // finished them in.
    conn.done.emplace(seq, std::move(encoded));
    for (auto it = conn.done.begin();
         it != conn.done.end() && it->first == conn.sent_seq;
         it = conn.done.erase(it), ++conn.sent_seq) {
        const std::string &payload = it->second;
        const size_t len = payload.size();
        const char prefix[4] = {
            static_cast<char>(len >> 24),
            static_cast<char>(len >> 16),
            static_cast<char>(len >> 8),
            static_cast<char>(len),
        };
        conn.out.append(prefix, 4);
        conn.out.append(payload);
    }
}

void
Server::flushWrites(Conn &conn)
{
    while (conn.out_off < conn.out.size()) {
        const ssize_t n = ::send(
            conn.fd, conn.out.data() + conn.out_off,
            conn.out.size() - conn.out_off, MSG_NOSIGNAL);
        if (n >= 0) {
            conn.out_off += static_cast<size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            updateEpollOut(conn);
            return;
        }
        metrics_.add(conn.http ? "http_write_errors"
                               : "response_write_errors");
        closeConn(conn);
        return;
    }
    conn.out.clear();
    conn.out_off = 0;
    updateEpollOut(conn);
    if ((conn.want_close || conn.read_eof) && conn.inflight == 0 &&
        conn.done.empty() && conn.drain_left == 0)
        closeConn(conn);
}

Response
Server::compileNow(const Request &req)
{
    // Dual-emitting scope: a "compile" event in the process-local
    // Chrome trace and, when the request's trace is sampled, a
    // "compile" span under the "request" root (the pipeline stages'
    // own TraceScopes nest below it the same way).
    support::TraceScope span("compile", "service");

    // Warm fast path: byte-identical resubmissions (the steady state
    // of a farm recompiling an unchanged tree) skip parse + verify +
    // canonical printing entirely. Disabled under verify_hits, which
    // needs the parsed function to recompile against.
    const bool use_raw_alias = options_.cache_bytes > 0 &&
                               !req.no_cache && !options_.verify_hits;
    CacheKey raw_key;
    if (use_raw_alias) {
        raw_key =
            makeCacheKey(req.module_text, req.configFingerprint());
        CacheKey canonical;
        bool aliased = false;
        {
            std::lock_guard<std::mutex> lock(alias_mutex_);
            const auto it =
                raw_alias_.find({raw_key.hi, raw_key.lo});
            if (it != raw_alias_.end()) {
                canonical = it->second;
                aliased = true;
            }
        }
        if (aliased) {
            std::optional<std::string> hit;
            {
                support::SpanScope lookup("cache-lookup");
                hit = cache_.lookup(canonical);
                if (lookup.live())
                    lookup.arg("alias", static_cast<int64_t>(1))
                        .arg("hit",
                             static_cast<int64_t>(hit ? 1 : 0));
            }
            if (hit) {
                if (!cluster_.empty()) {
                    metrics_.add(cluster_.ownerIndex(canonical) ==
                                         self_index_
                                     ? "shard_owned_requests"
                                     : "shard_foreign_requests");
                }
                metrics_.add("cache_raw_hits");
                Response resp;
                resp.cached = true;
                resp.body = std::move(*hit);
                return resp;
            }
        }
    }

    std::string parse_error;
    std::unique_ptr<ir::Module> mod =
        ir::parseModule(req.module_text, &parse_error);
    if (!mod)
        return makeError(status::kError,
                         "parse error: " + parse_error);
    if (mod->functions().empty())
        return makeError(status::kError, "module has no functions");

    ir::Function *fn = nullptr;
    if (req.function.empty()) {
        fn = mod->functions().front().get();
    } else if (mod->hasFunction(req.function)) {
        fn = &mod->function(req.function);
    } else {
        return makeError(status::kError,
                         "no function named '" + req.function + "'");
    }
    span.arg("fn", fn->name());

    sched::PipelineOptions options;
    std::string options_error;
    if (!parsePipelineOptions(req.options, options, &options_error))
        return makeError(status::kError,
                         "bad options: " + options_error);

    {
        const auto problems =
            ir::verifyFunction(*fn, ir::VerifyLevel::Schedulable);
        if (!problems.empty())
            return makeError(status::kError,
                             "verifier: " + problems.front());
    }

    // Content address: canonical (printed) function text, so
    // submissions that differ only in formatting share an entry,
    // plus every request field that shapes the body.
    const std::string canonical = canonicalFunctionText(*fn);
    const CacheKey key =
        makeCacheKey(canonical, req.configFingerprint());

    // Shard accounting: who owns this key on the cluster ring? A
    // foreign key means the client routed around us (or the ring
    // rebalanced after a death) — we still serve it, and forward the
    // result to the owner below.
    size_t owner = self_index_;
    if (!cluster_.empty()) {
        owner = cluster_.ownerIndex(key);
        metrics_.add(owner == self_index_
                         ? "shard_owned_requests"
                         : "shard_foreign_requests");
    }

    if (use_raw_alias) {
        std::lock_guard<std::mutex> lock(alias_mutex_);
        if (raw_alias_.size() >= kRawAliasCap)
            raw_alias_.clear();
        raw_alias_.emplace(std::pair{raw_key.hi, raw_key.lo}, key);
    }

    const bool use_cache = options_.cache_bytes > 0 && !req.no_cache;
    if (use_cache) {
        std::optional<std::string> looked_up;
        {
            support::SpanScope lookup("cache-lookup");
            looked_up = cache_.lookup(key);
            if (lookup.live())
                lookup.arg("hit", static_cast<int64_t>(
                                      looked_up ? 1 : 0));
        }
        if (std::optional<std::string> hit = std::move(looked_up)) {
            Response resp;
            resp.cached = true;
            resp.body = std::move(*hit);
            if (options_.verify_hits) {
                // Determinism invariant: a cached result must be
                // bit-identical to a fresh compile of the same
                // request.
                double fresh_ms = 0.0;
                const std::string fresh = compileBody(
                    *fn, mod->memWords(), options, req, &fresh_ms);
                if (fresh != resp.body) {
                    metrics_.add("cache_verify_mismatches");
                    TG_PANIC("compile cache verify mismatch for key "
                             "%s (cached %zu bytes, fresh %zu bytes)",
                             key.str().c_str(), resp.body.size(),
                             fresh.size());
                }
                metrics_.add("cache_verified_hits");
            }
            return resp;
        }
    }

    Response resp;
    {
        // Decision-mix telemetry for /stats: collect this compile's
        // remarks and fold them into the per-kind counters. Miss path
        // only — the verify_hits recompile above must not count the
        // same decisions twice.
        support::RemarkStream remarks;
        support::RemarkScope scope(&remarks);
        resp.body = compileBody(*fn, mod->memWords(), options, req,
                                &resp.compile_ms);
        remarks.foldInto(metrics_);
    }
    metrics_.observe("compile_ms", resp.compile_ms);
    // Scheduler arena gauges (sched.arena.*) for /stats: refreshed
    // after every compile so the snapshot tracks the warm footprint.
    sched::reportArenaMetrics(metrics_);
    if (use_cache) {
        cache_.insert(key, resp.body);
        const CompileCache::Stats cs = cache_.stats();
        metrics_.set("cache_bytes", cs.bytes);
        metrics_.set("cache_entries", cs.entries);
        if (owner != self_index_)
            forwardFill(owner, key, resp.body);
    }
    return resp;
}

void
Server::forwardFill(size_t owner_index, const CacheKey &key,
                    const std::string &body)
{
    if (peer_dead_[owner_index].load())
        return;
    const std::string &addr = options_.peers[owner_index];
    // Child of the ambient "compile" span; Client::call underneath
    // adds its own "call" child and propagates the trace to the
    // owner, whose "fill-apply" completes the cross-replica tree.
    support::SpanScope span("fill-send");
    if (span.live())
        span.arg("peer", addr).arg("key", key.str());
    Request fill;
    fill.verb = "fill";
    fill.fill_key = key.str();
    fill.module_text = body;

    std::string error;
    auto peer = Client::connect(addr, &error);
    Response resp;
    if (!peer || !peer->call(fill, &resp, &error) ||
        resp.status != status::kOk) {
        // Best effort: a dead peer is skipped from now on (it
        // rejoins with an empty cache on restart anyway).
        support::flightrec::note("fill-fail", addr.c_str());
        metrics_.add("fills_failed");
        peer_dead_[owner_index].store(true);
        span.arg("ok", static_cast<int64_t>(0));
        return;
    }
    metrics_.add("fills_sent");
    span.arg("ok", static_cast<int64_t>(1));
}

int64_t
Server::retryAfterHintMs() const
{
    // Suggest roughly one median request service time. An empty
    // histogram (daemon just started, nothing compiled yet) used to
    // fall through as p50 == 0 and clamp to the 10 ms minimum — a
    // hint that made every backed-off client hammer a server that had
    // told them nothing about its service time. Cold servers now hint
    // a flat default instead of the minimum.
    const support::Histogram requests =
        metrics_.histogram("request_ms");
    if (requests.count() == 0)
        return kColdRetryHintMs;
    return std::min<int64_t>(
        1000,
        std::max<int64_t>(10, static_cast<int64_t>(requests.p50())));
}

std::string
Server::statsJson() const
{
    const CompileCache::Stats cs = cache_.stats();
    size_t alive_peers = 0;
    for (size_t i = 0; i < cluster_.size(); ++i) {
        if (i == self_index_ || !peer_dead_[i].load())
            ++alive_peers;
    }
    std::ostringstream os;
    os << "{\"metrics\":" << metrics_.toJson() << ",\"cache\":"
       << support::strprintf(
              "{\"hits\":%llu,\"misses\":%llu,\"insertions\":%llu,"
              "\"evictions\":%llu,\"bytes\":%zu,\"entries\":%zu,"
              "\"max_bytes\":%zu}",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.insertions),
              static_cast<unsigned long long>(cs.evictions), cs.bytes,
              cs.entries, cache_.maxBytes())
       << ",\"cluster\":"
       << support::strprintf(
              "{\"self\":\"%s\",\"peers\":%zu,\"alive_peers\":%zu}",
              options_.self_address.c_str(), cluster_.size(),
              alive_peers)
       << ",\"build_info\":" << support::buildInfoJson()
       << support::strprintf(",\"uptime_s\":%.3f",
                             support::uptimeSeconds())
       << ",\"server\":"
       << support::strprintf(
              "{\"threads\":%zu,\"queue_limit\":%zu,"
              "\"max_connections\":%zu,\"max_frame_bytes\":%zu,"
              "\"mem_budget_bytes\":%llu,"
              "\"mem_projected_bytes\":%llu,\"mem_parked\":%zu,"
              "\"draining\":%s}",
              pool_ ? pool_->numThreads() : options_.threads,
              options_.queue_limit, options_.max_connections,
              options_.max_frame_bytes,
              static_cast<unsigned long long>(
                  options_.mem_budget_bytes),
              static_cast<unsigned long long>(
                  mem_projected_inflight_),
              mem_parked_.size(),
              stopping_.load() ? "true" : "false")
       << "}";
    return os.str();
}

void
Server::waitUntilStopped()
{
    // Block until a drain was requested (SIGTERM or requestStop()),
    // then escalate: finish what was admitted and exit the loop. The
    // poll keeps this waitable from a plain main() without handing
    // requestStop anything beyond its async-signal-safe pipe write.
    while (!stopping_.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (joined_.exchange(true))
        return;
    hard_stop_.store(true);
    {
        const char byte = 'w';
        [[maybe_unused]] const ssize_t n =
            ::write(wake_pipe_[1], &byte, 1);
    }
    if (loop_thread_.joinable())
        loop_thread_.join();

    pool_.reset();  // finishes anything still queued
    flushTelemetry();

    for (int *pipe_fds : {stop_pipe_, wake_pipe_}) {
        for (int i = 0; i < 2; ++i) {
            if (pipe_fds[i] >= 0)
                ::close(pipe_fds[i]);
            pipe_fds[i] = -1;
        }
    }
    if (epoll_fd_ >= 0)
        ::close(epoll_fd_);
    epoll_fd_ = -1;
    started_.store(false);
}

void
Server::flushTelemetry()
{
    if (!options_.metrics_path.empty()) {
        if (FILE *f = std::fopen(options_.metrics_path.c_str(), "w")) {
            const std::string json = statsJson();
            std::fwrite(json.data(), 1, json.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
        } else {
            TG_INFO("cannot write metrics to %s\n",
                    options_.metrics_path.c_str());
        }
    }
    if (!options_.trace_path.empty()) {
        auto &collector = support::TraceCollector::instance();
        if (!collector.writeChromeTraceFile(options_.trace_path))
            TG_INFO("cannot write trace to %s\n",
                    options_.trace_path.c_str());
        collector.clear();
    }
    if (!options_.span_path.empty()) {
        auto &spans = support::SpanCollector::instance();
        if (spans.dropped() > 0)
            TG_INFO("span buffer overflowed: %llu spans dropped\n",
                    static_cast<unsigned long long>(
                        spans.dropped()));
        if (!spans.writeJsonl(options_.span_path))
            TG_INFO("cannot write spans to %s\n",
                    options_.span_path.c_str());
    }
    if (!options_.flightrec_path.empty()) {
        // The same artifact a crash would leave: on a clean drain
        // the ring dumps to the configured path (once — a panic or
        // fatal signal that beat us here already wrote it).
        support::flightrec::dumpConfigured();
    }
}

} // namespace treegion::service
