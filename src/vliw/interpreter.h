/**
 * @file
 * Sequential reference interpreter.
 *
 * Executes a function's sequential IR block by block. It is the
 * semantic ground truth the VLIW schedule simulator is checked
 * against, and the engine behind the profiler (per-block and per-edge
 * execution counts).
 */

#ifndef TREEGION_VLIW_INTERPRETER_H
#define TREEGION_VLIW_INTERPRETER_H

#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/function.h"
#include "vliw/machine_state.h"

namespace treegion::vliw {

/** Outcome of one sequential execution. */
struct ExecResult
{
    bool completed = false;   ///< false: step/cycle limit hit
    int64_t ret_value = 0;    ///< RET operand value
    std::vector<int64_t> memory;       ///< final memory image
    std::vector<ir::BlockId> trace;    ///< blocks entered, in order
    uint64_t ops_executed = 0;
    uint64_t wrapped_stores = 0;
};

/** Per-block and per-edge execution counts from one or more runs. */
struct ExecutionCounts
{
    std::unordered_map<ir::BlockId, double> block;
    /** Keyed by (block << 32) | target slot. */
    std::unordered_map<uint64_t, double> edge;

    /** Key helper. */
    static uint64_t
    edgeKey(ir::BlockId from, size_t slot)
    {
        return (static_cast<uint64_t>(from) << 32) |
               static_cast<uint64_t>(slot);
    }
};

/** Sequential execution options. */
struct InterpOptions
{
    uint64_t max_ops = 2'000'000;  ///< abort runaway programs
};

/**
 * Run @p fn sequentially on @p memory.
 *
 * @param fn the function (must verify at Schedulable level)
 * @param memory initial data memory
 * @param options limits
 * @param counts when non-null, block/edge counts are accumulated here
 */
ExecResult runSequential(ir::Function &fn, std::vector<int64_t> memory,
                         const InterpOptions &options = {},
                         ExecutionCounts *counts = nullptr);

} // namespace treegion::vliw

#endif // TREEGION_VLIW_INTERPRETER_H
