/**
 * @file
 * End-to-end schedule validation.
 *
 * Runs three executions on the same input memory and cross-checks
 * them:
 *   1. the original sequential function (ground truth);
 *   2. the transformed sequential function (after tail duplication,
 *      when the region scheme mutates the CFG) — validates that the
 *      CFG transformation preserved semantics;
 *   3. the VLIW schedule — validates renaming, predication,
 *      speculation, exit copies and dominator parallelism.
 *
 * Checked: return value, final memory image, and the control trace
 * (the region roots the schedule visits must equal the transformed
 * sequential trace filtered to region roots).
 */

#ifndef TREEGION_VLIW_EQUIVALENCE_H
#define TREEGION_VLIW_EQUIVALENCE_H

#include <string>
#include <vector>

#include "sched/schedule.h"
#include "vliw/vliw_sim.h"

namespace treegion::vliw {

/** Result of an equivalence check. */
struct EquivalenceReport
{
    bool ok = false;
    bool incomplete = false;  ///< a limit was hit; nothing compared
    std::string detail;       ///< first mismatch, human-readable
    uint64_t seq_ops = 0;     ///< sequential ops executed
    uint64_t vliw_cycles = 0; ///< scheduled cycles executed
};

/**
 * Check that @p schedule (produced from @p transformed) computes the
 * same results as @p original on @p memory.
 *
 * @param original the pre-transformation function
 * @param transformed the function the schedule was built from (may be
 *        the same object as @p original for non-mutating schemes)
 * @param schedule the scheduled code
 * @param memory input memory image
 */
EquivalenceReport checkEquivalence(ir::Function &original,
                                   ir::Function &transformed,
                                   const sched::FunctionSchedule &schedule,
                                   const std::vector<int64_t> &memory);

} // namespace treegion::vliw

#endif // TREEGION_VLIW_EQUIVALENCE_H
