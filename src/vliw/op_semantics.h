/**
 * @file
 * Operation semantics shared by every execution engine.
 *
 * The sequential interpreter, the in-order VLIW simulator and the
 * out-of-order backend all execute the same Play-Doh repertoire; this
 * header holds the single definition of what each op *does* so the
 * engines can only differ in *when* effects become visible:
 *
 *  - execDataOp() evaluates a non-branch op against caller-supplied
 *    register reads, performs memory effects immediately, and emits
 *    register writes through a callback carrying the visibility delay
 *    (the MultiOp latency). The interpreter applies writes at once;
 *    the VLIW simulator defers them onto its pending list; the OoO
 *    backend writes renamed physical registers.
 *  - evalBranch() decides whether a branch fires, which target slot
 *    it selects, and the RET value, without touching any schedule
 *    structures (exit lookup stays with each engine).
 *  - applyExitCopies() implements the parallel read-then-write
 *    reconciliation-copy semantics of a region exit.
 *
 * Guard handling is uniform: a guarded op only takes effect when its
 * predicate reads true, except CMPP, which writes guard AND cmp /
 * guard AND NOT cmp unconditionally (the HPL-PD unconditional-type
 * compare), and CMPPA/CMPPO, whose partial wired-AND/OR updates are
 * keyed on the comparison alone. Sequential IR carries no guards, so
 * the interpreter sees identical behaviour to its historical
 * unguarded switch.
 */

#ifndef TREEGION_VLIW_OP_SEMANTICS_H
#define TREEGION_VLIW_OP_SEMANTICS_H

#include <cstdint>

#include "ir/op.h"

namespace treegion::vliw {

/**
 * Run limits shared by the in-order VLIW simulator and the
 * out-of-order backend. Either engine halts with completed = false
 * (never aborts) when the budget is exhausted, so differential fuzz
 * campaigns cannot hang or crash on a pathological schedule.
 */
struct SimLimits
{
    uint64_t max_cycles = 20'000'000;
};

namespace sem {

/** Evaluate a source operand against a register-read functor. */
template <typename ReadReg>
inline int64_t
operandValue(ReadReg &&read, const ir::Operand &operand)
{
    return operand.isImm() ? operand.imm : read(operand.reg);
}

/** True when the op is unguarded or its guard predicate reads true. */
template <typename ReadReg>
inline bool
guardTrue(ReadReg &&read, const ir::Op &op)
{
    return !op.guard || read(*op.guard) != 0;
}

/**
 * Execute one non-branch op.
 *
 * @param op the op (any opcode except BRU/BRCT/BRCF/MWBR/RET)
 * @param read register-read functor: int64_t(ir::Reg)
 * @param mem memory interface with readMem(addr) / writeMem(addr, v)
 *        (dismissible wrap semantics live there)
 * @param write register-write sink: void(ir::Reg dst, int64_t value,
 *        int delay) where @p delay is the number of cycles after
 *        issue at which the write becomes architecturally visible.
 *        Predicate-file writers use delay 1; LD and ALU ops use the
 *        opcode latency. Conditional writers (guarded ops, CMPPA,
 *        CMPPO) simply do not call the sink when the write is
 *        suppressed.
 */
template <typename ReadReg, typename MemIf, typename WriteFn>
inline void
execDataOp(const ir::Op &op, ReadReg &&read, MemIf &mem, WriteFn &&write)
{
    auto val = [&](const ir::Operand &operand) {
        return operandValue(read, operand);
    };
    switch (op.opcode) {
      case ir::Opcode::LD:
        write(op.dsts[0],
              mem.readMem(val(op.srcs[0]) + op.srcs[1].imm),
              op.latency());
        break;
      case ir::Opcode::ST:
        if (guardTrue(read, op)) {
            mem.writeMem(val(op.srcs[0]) + op.srcs[1].imm,
                         val(op.srcs[2]));
        }
        break;
      case ir::Opcode::CMPP: {
        const bool guard = guardTrue(read, op);
        const bool cmp =
            ir::evalCmp(op.cmp, val(op.srcs[0]), val(op.srcs[1]));
        write(op.dsts[0], guard && cmp, 1);
        if (op.dsts.size() > 1)
            write(op.dsts[1], guard && !cmp, 1);
        break;
      }
      case ir::Opcode::PSET:
        write(op.dsts[0], 1, 1);
        break;
      case ir::Opcode::PCLR:
        write(op.dsts[0], 0, 1);
        break;
      case ir::Opcode::CMPPA:
        // And-type compare: clears the predicate when the condition
        // fails, leaves it untouched otherwise, so several CMPPAs may
        // share a cycle (wired-AND).
        if (!ir::evalCmp(op.cmp, val(op.srcs[0]), val(op.srcs[1])))
            write(op.dsts[0], 0, 1);
        break;
      case ir::Opcode::CMPPO:
        // Or-type compare: the dual of CMPPA (wired-OR).
        if (ir::evalCmp(op.cmp, val(op.srcs[0]), val(op.srcs[1])))
            write(op.dsts[0], 1, 1);
        break;
      case ir::Opcode::PBR:
        break;  // no simulated semantics
      default: {
        // Plain computation. Usually unguarded (speculative);
        // hyperblock merge copies are guarded MOVs whose write is
        // conditional.
        if (!guardTrue(read, op))
            break;
        const int64_t a = val(op.srcs[0]);
        const int64_t b = op.srcs.size() > 1 ? val(op.srcs[1]) : 0;
        write(op.dsts[0], ir::evalAlu(op.opcode, a, b), op.latency());
        break;
      }
    }
}

/** What a branch op decided. */
struct BranchOutcome
{
    enum class Kind : uint8_t {
        kNone,           ///< branch did not take (no control transfer)
        kFire,           ///< branch takes target slot @ref slot
        kMalformedMwbr,  ///< MWBR selector matched no case value
    };

    Kind kind = Kind::kNone;
    size_t slot = 0;       ///< index into op.targets when kFire
    bool is_ret = false;   ///< kFire from a RET
    int64_t ret_value = 0; ///< RET result when is_ret
};

/**
 * Decide a branch op (BRU/BRCT/BRCF/MWBR/RET).
 *
 * BRU always fires slot 0. BRCT/BRCF read their predicate source and
 * fire slot 0 when taken; not-taken is kNone (the sequential
 * interpreter maps that to the fall-through slot, the schedule
 * simulators to "no exit"). MWBR and RET honour their guard; an MWBR
 * whose selector matches no case reports kMalformedMwbr so each
 * engine can choose between halting (sequential fuzz reductions) and
 * panicking (verified schedules).
 */
template <typename ReadReg>
inline BranchOutcome
evalBranch(const ir::Op &op, ReadReg &&read)
{
    BranchOutcome out;
    auto val = [&](const ir::Operand &operand) {
        return operandValue(read, operand);
    };
    switch (op.opcode) {
      case ir::Opcode::BRU:
        out.kind = BranchOutcome::Kind::kFire;
        break;
      case ir::Opcode::BRCT:
      case ir::Opcode::BRCF: {
        const bool p = read(op.srcs[0].reg) != 0;
        const bool taken = op.opcode == ir::Opcode::BRCT ? p : !p;
        if (taken)
            out.kind = BranchOutcome::Kind::kFire;
        break;
      }
      case ir::Opcode::MWBR: {
        if (!guardTrue(read, op))
            break;
        const int64_t sel = val(op.srcs[0]);
        out.kind = BranchOutcome::Kind::kMalformedMwbr;
        for (size_t i = 0; i < op.caseValues.size(); ++i) {
            if (op.caseValues[i] == sel) {
                out.kind = BranchOutcome::Kind::kFire;
                out.slot = i;
                break;
            }
        }
        break;
      }
      case ir::Opcode::RET:
        if (guardTrue(read, op)) {
            out.kind = BranchOutcome::Kind::kFire;
            out.is_ret = true;
            out.ret_value = val(op.srcs[0]);
        }
        break;
      default:
        break;  // not a branch; callers guard on op.isBranch()
    }
    return out;
}

/**
 * Apply an exit's reconciliation copies: all sources are read first,
 * then all destinations written, so copies behave as one parallel
 * MultiOp regardless of dst/src overlap.
 *
 * @param copies the exit's ExitCopy-like list (members dst, src)
 * @param read register-read functor
 * @param write register-write functor: void(ir::Reg, int64_t)
 * @return the number of copies applied
 */
template <typename Copies, typename ReadReg, typename WriteReg>
inline size_t
applyExitCopies(const Copies &copies, ReadReg &&read, WriteReg &&write)
{
    std::vector<std::pair<ir::Reg, int64_t>> writes;
    writes.reserve(copies.size());
    for (const auto &copy : copies)
        writes.emplace_back(copy.dst, read(copy.src));
    for (const auto &[dst, value] : writes)
        write(dst, value);
    return writes.size();
}

} // namespace sem
} // namespace treegion::vliw

#endif // TREEGION_VLIW_OP_SEMANTICS_H
