#include "vliw/interpreter.h"

#include "support/logging.h"
#include "vliw/op_semantics.h"

namespace treegion::vliw {

using ir::BlockId;
using ir::Op;
using ir::Opcode;

ExecResult
runSequential(ir::Function &fn, std::vector<int64_t> memory,
              const InterpOptions &options, ExecutionCounts *counts)
{
    MachineState state(fn.numGprs(), fn.numPreds(), std::move(memory));
    ExecResult result;

    auto readReg = [&](ir::Reg r) { return state.readReg(r); };
    // Sequential execution applies writes immediately; the MultiOp
    // visibility delay only matters to the schedule simulators.
    auto writeNow = [&](ir::Reg dst, int64_t value, int) {
        state.writeReg(dst, value);
    };

    BlockId cur = fn.entry();
    for (;;) {
        result.trace.push_back(cur);
        if (counts)
            counts->block[cur] += 1.0;
        const ir::BasicBlock &b = fn.block(cur);

        // Body ops.
        for (size_t i = 0; i + 1 < b.ops().size(); ++i) {
            const Op &op = b.ops()[i];
            ++result.ops_executed;
            if (result.ops_executed > options.max_ops) {
                result.memory = state.memory();
                return result;  // completed stays false
            }
            sem::execDataOp(op, readReg, state, writeNow);
        }

        // Terminator.
        const Op &term = b.terminator();
        ++result.ops_executed;
        if (!term.isBranch())
            TG_PANIC("bad terminator in bb%u", cur);
        const sem::BranchOutcome out = sem::evalBranch(term, readReg);
        if (out.kind == sem::BranchOutcome::Kind::kMalformedMwbr) {
            // A selector outside the case table means the program is
            // dynamically malformed; the generator always narrows
            // selectors into range, but fuzz reduction can delete or
            // shrink part of the narrowing chain. Halt without
            // completing so callers reject the execution instead of
            // the process aborting.
            result.memory = state.memory();
            return result;  // completed stays false
        }
        if (out.is_ret) {
            result.completed = true;
            result.ret_value = out.ret_value;
            result.memory = state.memory();
            result.wrapped_stores = state.wrappedStores();
            return result;
        }
        // A not-taken BRCT/BRCF falls through to target slot 1.
        const size_t taken_slot =
            out.kind == sem::BranchOutcome::Kind::kFire ? out.slot : 1;
        if (counts)
            counts->edge[ExecutionCounts::edgeKey(cur, taken_slot)] +=
                1.0;
        cur = term.targets[taken_slot];
        TG_ASSERT(cur != ir::kNoBlock);
    }
}

} // namespace treegion::vliw
