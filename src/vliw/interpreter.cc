#include "vliw/interpreter.h"

#include "support/logging.h"

namespace treegion::vliw {

using ir::BlockId;
using ir::Op;
using ir::Opcode;

namespace {

/** Evaluate a source operand. */
int64_t
value(const MachineState &state, const ir::Operand &operand)
{
    return operand.isImm() ? operand.imm : state.readReg(operand.reg);
}

} // namespace

ExecResult
runSequential(ir::Function &fn, std::vector<int64_t> memory,
              const InterpOptions &options, ExecutionCounts *counts)
{
    MachineState state(fn.numGprs(), fn.numPreds(), std::move(memory));
    ExecResult result;

    BlockId cur = fn.entry();
    for (;;) {
        result.trace.push_back(cur);
        if (counts)
            counts->block[cur] += 1.0;
        const ir::BasicBlock &b = fn.block(cur);

        // Body ops.
        for (size_t i = 0; i + 1 < b.ops().size(); ++i) {
            const Op &op = b.ops()[i];
            ++result.ops_executed;
            if (result.ops_executed > options.max_ops) {
                result.memory = state.memory();
                return result;  // completed stays false
            }
            switch (op.opcode) {
              case Opcode::LD:
                state.writeReg(op.dsts[0],
                               state.readMem(value(state, op.srcs[0]) +
                                             op.srcs[1].imm));
                break;
              case Opcode::ST:
                state.writeMem(value(state, op.srcs[0]) + op.srcs[1].imm,
                               value(state, op.srcs[2]));
                break;
              case Opcode::CMPP: {
                const bool cmp = ir::evalCmp(op.cmp,
                                             value(state, op.srcs[0]),
                                             value(state, op.srcs[1]));
                state.writeReg(op.dsts[0], cmp);
                if (op.dsts.size() > 1)
                    state.writeReg(op.dsts[1], !cmp);
                break;
              }
              case Opcode::PSET:
                state.writeReg(op.dsts[0], 1);
                break;
              case Opcode::PCLR:
                state.writeReg(op.dsts[0], 0);
                break;
              case Opcode::CMPPA:
                if (!ir::evalCmp(op.cmp, value(state, op.srcs[0]),
                                 value(state, op.srcs[1]))) {
                    state.writeReg(op.dsts[0], 0);
                }
                break;
              case Opcode::CMPPO:
                if (ir::evalCmp(op.cmp, value(state, op.srcs[0]),
                                value(state, op.srcs[1]))) {
                    state.writeReg(op.dsts[0], 1);
                }
                break;
              case Opcode::PBR:
                break;  // no simulated semantics
              default: {
                const int64_t a = value(state, op.srcs[0]);
                const int64_t c = op.srcs.size() > 1
                                      ? value(state, op.srcs[1])
                                      : 0;
                state.writeReg(op.dsts[0],
                               ir::evalAlu(op.opcode, a, c));
                break;
              }
            }
        }

        // Terminator.
        const Op &term = b.terminator();
        ++result.ops_executed;
        size_t taken_slot = 0;
        switch (term.opcode) {
          case Opcode::RET:
            result.completed = true;
            result.ret_value = value(state, term.srcs[0]);
            result.memory = state.memory();
            result.wrapped_stores = state.wrappedStores();
            return result;
          case Opcode::BRU:
            taken_slot = 0;
            break;
          case Opcode::BRCT:
          case Opcode::BRCF: {
            const bool p = state.readReg(term.srcs[0].reg) != 0;
            const bool taken = term.opcode == Opcode::BRCT ? p : !p;
            taken_slot = taken ? 0 : 1;
            break;
          }
          case Opcode::MWBR: {
            const int64_t sel = value(state, term.srcs[0]);
            bool found = false;
            for (size_t i = 0; i < term.caseValues.size(); ++i) {
                if (term.caseValues[i] == sel) {
                    taken_slot = i;
                    found = true;
                    break;
                }
            }
            if (!found) {
                // A selector outside the case table means the
                // program is dynamically malformed; the generator
                // always narrows selectors into range, but fuzz
                // reduction can delete or shrink part of the
                // narrowing chain. Halt without completing so
                // callers reject the execution instead of the
                // process aborting.
                result.memory = state.memory();
                return result;  // completed stays false
            }
            break;
          }
          default:
            TG_PANIC("bad terminator in bb%u", cur);
        }
        if (counts)
            counts->edge[ExecutionCounts::edgeKey(cur, taken_slot)] +=
                1.0;
        cur = term.targets[taken_slot];
        TG_ASSERT(cur != ir::kNoBlock);
    }
}

} // namespace treegion::vliw
