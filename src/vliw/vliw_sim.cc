#include "vliw/vliw_sim.h"

#include <algorithm>
#include <unordered_map>

#include "support/logging.h"

namespace treegion::vliw {

using ir::BlockId;
using ir::Op;
using ir::Opcode;
using sched::RegionSchedule;
using sched::ScheduledExit;
using sched::ScheduledOp;

namespace {

/** A register write in flight. */
struct PendingWrite
{
    uint64_t ready;  ///< first cycle (within the region) it is visible
    ir::Reg reg;
    int64_t value;
};

int64_t
value(const MachineState &state, const ir::Operand &operand)
{
    return operand.isImm() ? operand.imm : state.readReg(operand.reg);
}

bool
guardTrue(const MachineState &state, const Op &op)
{
    return !op.guard || state.readReg(*op.guard) != 0;
}

/** Rows of a region schedule, precomputed. */
struct RegionRows
{
    std::vector<std::vector<const ScheduledOp *>> rows;
    /** exits by (op index in RegionSchedule::ops). */
    std::unordered_map<size_t, std::vector<const ScheduledExit *>> exits;
};

RegionRows
buildRows(const RegionSchedule &rs)
{
    RegionRows out;
    out.rows.resize(static_cast<size_t>(rs.length));
    for (const ScheduledOp &sop : rs.ops)
        out.rows[static_cast<size_t>(sop.cycle)].push_back(&sop);
    for (auto &row : out.rows) {
        std::sort(row.begin(), row.end(),
                  [](const ScheduledOp *a, const ScheduledOp *b) {
                      return a->slot < b->slot;
                  });
    }
    for (const ScheduledExit &exit : rs.exits)
        out.exits[exit.op_index].push_back(&exit);
    return out;
}

} // namespace

VliwResult
runScheduled(ir::Function &fn, const sched::FunctionSchedule &sched,
             std::vector<int64_t> memory, const VliwOptions &options)
{
    MachineState state(fn.numGprs(), fn.numPreds(), std::move(memory));
    VliwResult result;

    // Precompute rows per region.
    std::unordered_map<BlockId, RegionRows> rows_by_root;
    for (const auto &[root, rs] : sched.regions)
        rows_by_root.emplace(root, buildRows(rs));

    // Index of each scheduled op within its region's op vector, for
    // exit lookup.
    std::unordered_map<BlockId, std::unordered_map<const ScheduledOp *,
                                                   size_t>>
        op_indices;
    for (const auto &[root, rs] : sched.regions) {
        auto &map = op_indices[root];
        for (size_t i = 0; i < rs.ops.size(); ++i)
            map.emplace(&rs.ops[i], i);
    }

    BlockId cur = sched.entry;
    std::vector<PendingWrite> pending;

    auto commit = [&](uint64_t upto) {
        size_t kept = 0;
        for (PendingWrite &w : pending) {
            if (w.ready <= upto)
                state.writeReg(w.reg, w.value);
            else
                pending[kept++] = w;
        }
        pending.resize(kept);
    };

    while (result.cycles < options.max_cycles) {
        auto sit = sched.regions.find(cur);
        if (sit == sched.regions.end())
            TG_PANIC("no region schedule rooted at bb%u", cur);
        const RegionSchedule &rs = sit->second;
        const RegionRows &rr = rows_by_root.at(cur);
        result.trace.push_back(cur);
        ++result.regions_executed;
        pending.clear();

        const ScheduledExit *fired = nullptr;
        for (uint64_t cyc = 0;
             cyc < static_cast<uint64_t>(rs.length) && !fired; ++cyc) {
            commit(cyc);
            ++result.cycles;
            if (result.cycles >= options.max_cycles)
                break;

            int64_t ret_value = 0;
            for (const ScheduledOp *sop : rr.rows[cyc]) {
                const Op &op = sop->op;
                ++result.ops_executed;
                switch (op.opcode) {
                  case Opcode::LD:
                    // Address read from committed state; the loaded
                    // value lands after the load latency.
                    pending.push_back(
                        {cyc + static_cast<uint64_t>(op.latency()),
                         op.dsts[0],
                         state.readMem(value(state, op.srcs[0]) +
                                       op.srcs[1].imm)});
                    break;
                  case Opcode::ST:
                    if (guardTrue(state, op)) {
                        state.writeMem(value(state, op.srcs[0]) +
                                           op.srcs[1].imm,
                                       value(state, op.srcs[2]));
                    }
                    break;
                  case Opcode::CMPP: {
                    const bool guard = guardTrue(state, op);
                    const bool cmp =
                        ir::evalCmp(op.cmp, value(state, op.srcs[0]),
                                    value(state, op.srcs[1]));
                    pending.push_back(
                        {cyc + 1, op.dsts[0], guard && cmp});
                    if (op.dsts.size() > 1)
                        pending.push_back(
                            {cyc + 1, op.dsts[1], guard && !cmp});
                    break;
                  }
                  case Opcode::PSET:
                    pending.push_back({cyc + 1, op.dsts[0], 1});
                    break;
                  case Opcode::PCLR:
                    pending.push_back({cyc + 1, op.dsts[0], 0});
                    break;
                  case Opcode::CMPPA:
                    // And-type compare: clears the predicate when the
                    // condition fails, leaves it untouched otherwise,
                    // so several CMPPAs may share a cycle.
                    if (!ir::evalCmp(op.cmp, value(state, op.srcs[0]),
                                     value(state, op.srcs[1]))) {
                        pending.push_back({cyc + 1, op.dsts[0], 0});
                    }
                    break;
                  case Opcode::CMPPO:
                    // Or-type compare: the dual of CMPPA.
                    if (ir::evalCmp(op.cmp, value(state, op.srcs[0]),
                                    value(state, op.srcs[1]))) {
                        pending.push_back({cyc + 1, op.dsts[0], 1});
                    }
                    break;
                  case Opcode::PBR:
                    break;
                  case Opcode::BRU:
                  case Opcode::BRCT:
                  case Opcode::BRCF:
                  case Opcode::MWBR:
                  case Opcode::RET: {
                    const ScheduledExit *exit = nullptr;
                    const size_t idx = op_indices.at(cur).at(sop);
                    auto eit = rr.exits.find(idx);
                    if (op.opcode == Opcode::BRU) {
                        TG_ASSERT(eit != rr.exits.end());
                        exit = eit->second.front();
                    } else if (op.opcode == Opcode::BRCT ||
                               op.opcode == Opcode::BRCF) {
                        const bool p =
                            state.readReg(op.srcs[0].reg) != 0;
                        const bool take =
                            op.opcode == Opcode::BRCT ? p : !p;
                        if (take) {
                            TG_ASSERT(eit != rr.exits.end());
                            exit = eit->second.front();
                        }
                    } else if (op.opcode == Opcode::MWBR) {
                        if (guardTrue(state, op)) {
                            const int64_t sel =
                                value(state, op.srcs[0]);
                            size_t slot = SIZE_MAX;
                            for (size_t i = 0;
                                 i < op.caseValues.size(); ++i) {
                                if (op.caseValues[i] == sel) {
                                    slot = i;
                                    break;
                                }
                            }
                            if (slot == SIZE_MAX) {
                                TG_PANIC("MWBR selector %lld matches "
                                         "no case",
                                         static_cast<long long>(sel));
                            }
                            if (op.targets[slot] != ir::kNoBlock) {
                                TG_ASSERT(eit != rr.exits.end());
                                for (const ScheduledExit *cand :
                                     eit->second) {
                                    if (cand->target_slot == slot) {
                                        exit = cand;
                                        break;
                                    }
                                }
                                TG_ASSERT(exit != nullptr);
                            }
                        }
                    } else {  // RET
                        if (guardTrue(state, op)) {
                            TG_ASSERT(eit != rr.exits.end());
                            exit = eit->second.front();
                            ret_value = value(state, op.srcs[0]);
                        }
                    }
                    if (exit) {
                        TG_ASSERT(!fired &&
                                  "two exits fired in one cycle");
                        fired = exit;
                    }
                    break;
                  }
                  default: {
                    // Plain computation. Usually unguarded
                    // (speculative); hyperblock merge copies are
                    // guarded MOVs whose write is conditional.
                    if (!guardTrue(state, op))
                        break;
                    const int64_t a = value(state, op.srcs[0]);
                    const int64_t b = op.srcs.size() > 1
                                          ? value(state, op.srcs[1])
                                          : 0;
                    pending.push_back(
                        {cyc + static_cast<uint64_t>(op.latency()),
                         op.dsts[0], ir::evalAlu(op.opcode, a, b)});
                    break;
                  }
                }
            }

            if (fired) {
                // Writes reaching visibility next cycle are
                // architectural at the exit boundary.
                commit(cyc + 1);
                // Reconciliation copies: parallel read, then write.
                std::vector<std::pair<ir::Reg, int64_t>> writes;
                writes.reserve(fired->copies.size());
                for (const sched::ExitCopy &copy : fired->copies)
                    writes.emplace_back(copy.dst,
                                        state.readReg(copy.src));
                for (const auto &[dst, val] : writes)
                    state.writeReg(dst, val);
                result.copies_applied += fired->copies.size();

                if (fired->is_ret) {
                    result.completed = true;
                    result.ret_value = ret_value;
                    result.memory = state.memory();
                    return result;
                }
                cur = fired->target;
            }
        }
        if (!fired && result.cycles < options.max_cycles)
            TG_PANIC("region bb%u fell through without an exit",
                     rs.root);
    }

    result.memory = state.memory();
    return result;  // cycle limit hit; completed stays false
}

} // namespace treegion::vliw
