#include "vliw/vliw_sim.h"

#include <algorithm>
#include <unordered_map>

#include "support/logging.h"
#include "vliw/op_semantics.h"

namespace treegion::vliw {

using ir::BlockId;
using ir::Op;
using ir::Opcode;
using sched::RegionSchedule;
using sched::ScheduledExit;
using sched::ScheduledOp;

namespace {

/** A register write in flight. */
struct PendingWrite
{
    uint64_t ready;  ///< first cycle (within the region) it is visible
    ir::Reg reg;
    int64_t value;
};

/** Rows of a region schedule, precomputed. */
struct RegionRows
{
    std::vector<std::vector<const ScheduledOp *>> rows;
    /** exits by (op index in RegionSchedule::ops). */
    std::unordered_map<size_t, std::vector<const ScheduledExit *>> exits;
};

RegionRows
buildRows(const RegionSchedule &rs)
{
    RegionRows out;
    out.rows.resize(static_cast<size_t>(rs.length));
    for (const ScheduledOp &sop : rs.ops)
        out.rows[static_cast<size_t>(sop.cycle)].push_back(&sop);
    for (auto &row : out.rows) {
        std::sort(row.begin(), row.end(),
                  [](const ScheduledOp *a, const ScheduledOp *b) {
                      return a->slot < b->slot;
                  });
    }
    for (const ScheduledExit &exit : rs.exits)
        out.exits[exit.op_index].push_back(&exit);
    return out;
}

/**
 * Map a fired branch to its exit record, or nullptr for an MWBR case
 * edge that falls through internally (target == kNoBlock).
 */
const ScheduledExit *
resolveExit(const RegionRows &rr, size_t op_index, const Op &op,
            size_t slot)
{
    auto eit = rr.exits.find(op_index);
    if (op.opcode == Opcode::MWBR) {
        if (op.targets[slot] == ir::kNoBlock)
            return nullptr;  // internal fall-through case edge
        TG_ASSERT(eit != rr.exits.end());
        for (const ScheduledExit *cand : eit->second) {
            if (cand->target_slot == slot)
                return cand;
        }
        TG_PANIC("MWBR slot %zu has no exit record", slot);
    }
    TG_ASSERT(eit != rr.exits.end());
    return eit->second.front();
}

} // namespace

VliwResult
runScheduled(ir::Function &fn, const sched::FunctionSchedule &sched,
             std::vector<int64_t> memory, const VliwOptions &options)
{
    MachineState state(fn.numGprs(), fn.numPreds(), std::move(memory));
    VliwResult result;

    // Precompute rows per region.
    std::unordered_map<BlockId, RegionRows> rows_by_root;
    for (const auto &[root, rs] : sched.regions)
        rows_by_root.emplace(root, buildRows(rs));

    // Index of each scheduled op within its region's op vector, for
    // exit lookup.
    std::unordered_map<BlockId, std::unordered_map<const ScheduledOp *,
                                                   size_t>>
        op_indices;
    for (const auto &[root, rs] : sched.regions) {
        auto &map = op_indices[root];
        for (size_t i = 0; i < rs.ops.size(); ++i)
            map.emplace(&rs.ops[i], i);
    }

    BlockId cur = sched.entry;
    std::vector<PendingWrite> pending;

    auto readReg = [&](ir::Reg r) { return state.readReg(r); };

    auto commit = [&](uint64_t upto) {
        size_t kept = 0;
        for (PendingWrite &w : pending) {
            if (w.ready <= upto)
                state.writeReg(w.reg, w.value);
            else
                pending[kept++] = w;
        }
        pending.resize(kept);
    };

    while (result.cycles < options.max_cycles) {
        auto sit = sched.regions.find(cur);
        if (sit == sched.regions.end())
            TG_PANIC("no region schedule rooted at bb%u", cur);
        const RegionSchedule &rs = sit->second;
        const RegionRows &rr = rows_by_root.at(cur);
        result.trace.push_back(cur);
        ++result.regions_executed;
        pending.clear();

        const ScheduledExit *fired = nullptr;
        for (uint64_t cyc = 0;
             cyc < static_cast<uint64_t>(rs.length) && !fired; ++cyc) {
            commit(cyc);
            ++result.cycles;
            if (result.cycles >= options.max_cycles)
                break;

            int64_t ret_value = 0;
            for (const ScheduledOp *sop : rr.rows[cyc]) {
                const Op &op = sop->op;
                ++result.ops_executed;
                if (!op.isBranch()) {
                    sem::execDataOp(
                        op, readReg, state,
                        [&](ir::Reg dst, int64_t value, int delay) {
                            pending.push_back(
                                {cyc + static_cast<uint64_t>(delay),
                                 dst, value});
                        });
                    continue;
                }
                const sem::BranchOutcome out =
                    sem::evalBranch(op, readReg);
                if (out.kind ==
                    sem::BranchOutcome::Kind::kMalformedMwbr) {
                    TG_PANIC("MWBR selector matches no case");
                }
                if (out.kind != sem::BranchOutcome::Kind::kFire)
                    continue;
                const size_t idx = op_indices.at(cur).at(sop);
                const ScheduledExit *exit =
                    resolveExit(rr, idx, op, out.slot);
                if (!exit)
                    continue;  // internal MWBR fall-through
                if (out.is_ret)
                    ret_value = out.ret_value;
                TG_ASSERT(!fired && "two exits fired in one cycle");
                fired = exit;
            }

            if (fired) {
                // Writes reaching visibility next cycle are
                // architectural at the exit boundary.
                commit(cyc + 1);
                // Reconciliation copies: parallel read, then write.
                result.copies_applied += sem::applyExitCopies(
                    fired->copies, readReg,
                    [&](ir::Reg dst, int64_t value) {
                        state.writeReg(dst, value);
                    });

                if (fired->is_ret) {
                    result.completed = true;
                    result.ret_value = ret_value;
                    result.memory = state.memory();
                    return result;
                }
                cur = fired->target;
            }
        }
        if (!fired && result.cycles < options.max_cycles)
            TG_PANIC("region bb%u fell through without an exit",
                     rs.root);
    }

    result.memory = state.memory();
    return result;  // cycle limit hit; completed stays false
}

} // namespace treegion::vliw
