#include "vliw/equivalence.h"

#include <unordered_set>

#include "support/string_utils.h"

namespace treegion::vliw {

using support::strprintf;

EquivalenceReport
checkEquivalence(ir::Function &original, ir::Function &transformed,
                 const sched::FunctionSchedule &schedule,
                 const std::vector<int64_t> &memory)
{
    EquivalenceReport report;

    const ExecResult seq_orig = runSequential(original, memory);
    if (!seq_orig.completed) {
        report.incomplete = true;
        report.detail = "original sequential run hit its op limit";
        return report;
    }
    report.seq_ops = seq_orig.ops_executed;

    const ExecResult seq_trans =
        &original == &transformed ? seq_orig
                                  : runSequential(transformed, memory);
    if (!seq_trans.completed) {
        report.incomplete = true;
        report.detail = "transformed sequential run hit its op limit";
        return report;
    }

    if (seq_trans.ret_value != seq_orig.ret_value) {
        report.detail = strprintf(
            "tail duplication changed the return value: %lld != %lld",
            static_cast<long long>(seq_trans.ret_value),
            static_cast<long long>(seq_orig.ret_value));
        return report;
    }
    if (seq_trans.memory != seq_orig.memory) {
        report.detail = "tail duplication changed final memory";
        return report;
    }

    const VliwResult vliw =
        runScheduled(transformed, schedule, memory);
    if (!vliw.completed) {
        report.incomplete = true;
        report.detail = "scheduled run hit its cycle limit";
        return report;
    }
    report.vliw_cycles = vliw.cycles;

    if (vliw.ret_value != seq_orig.ret_value) {
        report.detail = strprintf(
            "scheduled return value %lld != sequential %lld",
            static_cast<long long>(vliw.ret_value),
            static_cast<long long>(seq_orig.ret_value));
        return report;
    }
    for (size_t i = 0; i < vliw.memory.size(); ++i) {
        if (vliw.memory[i] != seq_orig.memory[i]) {
            report.detail = strprintf(
                "memory[%zu]: scheduled %lld != sequential %lld", i,
                static_cast<long long>(vliw.memory[i]),
                static_cast<long long>(seq_orig.memory[i]));
            return report;
        }
    }

    // Control trace: region roots visited must match the transformed
    // sequential block trace filtered to region roots.
    std::unordered_set<ir::BlockId> roots;
    for (const auto &[root, rs] : schedule.regions)
        roots.insert(root);
    std::vector<ir::BlockId> expected;
    for (const ir::BlockId id : seq_trans.trace) {
        if (roots.count(id))
            expected.push_back(id);
    }
    if (expected != vliw.trace) {
        report.detail = strprintf(
            "control trace mismatch: %zu scheduled region entries vs "
            "%zu expected", vliw.trace.size(), expected.size());
        for (size_t i = 0;
             i < std::min(expected.size(), vliw.trace.size()); ++i) {
            if (expected[i] != vliw.trace[i]) {
                report.detail += strprintf(
                    " (first divergence at %zu: bb%u vs bb%u)", i,
                    vliw.trace[i], expected[i]);
                break;
            }
        }
        return report;
    }

    report.ok = true;
    return report;
}

} // namespace treegion::vliw
