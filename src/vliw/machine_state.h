/**
 * @file
 * Architectural state shared by the sequential interpreter and the
 * VLIW schedule simulator: the three register files and word-
 * addressed data memory.
 *
 * Loads wrap out-of-range addresses modulo the memory size, modeling
 * Play-Doh dismissible (non-faulting) loads so speculated loads are
 * always safe; both execution engines use identical semantics so
 * results stay comparable. Stores that wrap are counted, which lets
 * tests assert that non-speculative code never goes out of bounds.
 */

#ifndef TREEGION_VLIW_MACHINE_STATE_H
#define TREEGION_VLIW_MACHINE_STATE_H

#include <cstdint>
#include <vector>

#include "ir/operand.h"

namespace treegion::vliw {

/** Register files plus data memory. */
class MachineState
{
  public:
    /**
     * @param num_gprs GPR file size
     * @param num_preds predicate file size
     * @param memory initial data memory image (word addressed)
     */
    MachineState(uint32_t num_gprs, uint32_t num_preds,
                 std::vector<int64_t> memory);

    /** Read a register (BTRs read as 0; they carry no semantics). */
    int64_t readReg(ir::Reg r) const;

    /** Write a register. */
    void writeReg(ir::Reg r, int64_t value);

    /** Read memory, wrapping the address (dismissible load). */
    int64_t readMem(int64_t addr);

    /** Write memory, wrapping the address (counted). */
    void writeMem(int64_t addr, int64_t value);

    /** @return the full memory image. */
    const std::vector<int64_t> &memory() const { return memory_; }

    /** @return loads+stores whose address wrapped. */
    uint64_t wrappedAccesses() const { return wrapped_; }

    /** @return wrapped stores only (should be 0 for valid programs). */
    uint64_t wrappedStores() const { return wrapped_stores_; }

  private:
    size_t wrap(int64_t addr, bool is_store);

    std::vector<int64_t> gprs_;
    std::vector<int64_t> preds_;
    std::vector<int64_t> memory_;
    uint64_t wrapped_ = 0;
    uint64_t wrapped_stores_ = 0;
};

} // namespace treegion::vliw

#endif // TREEGION_VLIW_MACHINE_STATE_H
