#include "vliw/machine_state.h"

#include "support/logging.h"

namespace treegion::vliw {

MachineState::MachineState(uint32_t num_gprs, uint32_t num_preds,
                           std::vector<int64_t> memory)
    : gprs_(num_gprs, 0),
      preds_(num_preds, 0),
      memory_(std::move(memory))
{
    TG_ASSERT(!memory_.empty());
}

int64_t
MachineState::readReg(ir::Reg r) const
{
    switch (r.cls) {
      case ir::RegClass::Gpr:
        TG_ASSERT(r.idx < gprs_.size());
        return gprs_[r.idx];
      case ir::RegClass::Pred:
        TG_ASSERT(r.idx < preds_.size());
        return preds_[r.idx];
      case ir::RegClass::Btr:
        return 0;
    }
    TG_PANIC("bad RegClass");
}

void
MachineState::writeReg(ir::Reg r, int64_t value)
{
    switch (r.cls) {
      case ir::RegClass::Gpr:
        TG_ASSERT(r.idx < gprs_.size());
        gprs_[r.idx] = value;
        return;
      case ir::RegClass::Pred:
        TG_ASSERT(r.idx < preds_.size());
        preds_[r.idx] = value ? 1 : 0;
        return;
      case ir::RegClass::Btr:
        return;  // BTRs carry no simulated semantics
    }
    TG_PANIC("bad RegClass");
}

size_t
MachineState::wrap(int64_t addr, bool is_store)
{
    const auto size = static_cast<int64_t>(memory_.size());
    int64_t wrapped = addr % size;
    if (wrapped < 0)
        wrapped += size;
    if (wrapped != addr) {
        ++wrapped_;
        if (is_store)
            ++wrapped_stores_;
    }
    return static_cast<size_t>(wrapped);
}

int64_t
MachineState::readMem(int64_t addr)
{
    return memory_[wrap(addr, false)];
}

void
MachineState::writeMem(int64_t addr, int64_t value)
{
    memory_[wrap(addr, true)] = value;
}

} // namespace treegion::vliw
