/**
 * @file
 * VLIW schedule simulator.
 *
 * Executes a FunctionSchedule with Play-Doh MultiOp semantics:
 *
 *  - All ops of a row read architectural state as of the start of
 *    the cycle; register writes commit "latency" cycles later
 *    (visible to rows issued at cycle + latency).
 *  - Memory ops within a row execute in slot order, so a store and a
 *    dependent memory op may legally share a cycle (the scheduler
 *    emits them slot-ordered).
 *  - Guarded ops take effect only when their predicate is true;
 *    CMPP writes guard AND cmp / guard AND NOT cmp unconditionally.
 *  - At most one exit branch of a row may fire (path predicates are
 *    mutually exclusive; the simulator asserts this). When an exit
 *    fires, writes becoming visible in the next cycle are committed,
 *    the exit's reconciliation copies restore the original registers,
 *    and control moves to the target region's schedule. A region must
 *    exit through a branch; running off the end is a scheduler bug.
 *
 * The cycle count this simulator reports equals the paper's
 * estimate: each region execution costs exit-cycle + 1.
 */

#ifndef TREEGION_VLIW_VLIW_SIM_H
#define TREEGION_VLIW_VLIW_SIM_H

#include "sched/schedule.h"
#include "vliw/interpreter.h"
#include "vliw/op_semantics.h"

namespace treegion::vliw {

/** Outcome of one scheduled execution. */
struct VliwResult
{
    bool completed = false;
    int64_t ret_value = 0;
    std::vector<int64_t> memory;
    std::vector<ir::BlockId> trace;  ///< region roots entered, in order
    uint64_t cycles = 0;
    uint64_t regions_executed = 0;
    uint64_t copies_applied = 0;
    uint64_t ops_executed = 0;
};

/**
 * Simulation limits. Shared with the out-of-order backend (one
 * SimLimits drives both) so fuzz campaigns can bound either engine
 * with the same knob.
 */
using VliwOptions = SimLimits;

/**
 * Execute @p sched on @p memory.
 *
 * @param fn the function the schedule was produced from (register
 *        file sizes)
 * @param sched the scheduled code
 * @param memory initial data memory
 * @param options limits
 */
VliwResult runScheduled(ir::Function &fn,
                        const sched::FunctionSchedule &sched,
                        std::vector<int64_t> memory,
                        const VliwOptions &options = {});

} // namespace treegion::vliw

#endif // TREEGION_VLIW_VLIW_SIM_H
