/**
 * @file
 * Tail duplication demo: shows Fig. 11/12 in action. Builds a diamond
 * whose arms share a tail, prints the CFG before and after treegion
 * formation with tail duplication at different expansion limits, and
 * reports region statistics and code expansion.
 *
 *   $ ./tail_duplication_demo
 */

#include <cstdio>
#include <iostream>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/printer.h"
#include "region/formation.h"
#include "region/region_stats.h"

using namespace treegion;
using ir::Builder;
using ir::CmpKind;
using ir::Opcode;
using ir::Reg;

/** Two stacked diamonds sharing tails - plenty to duplicate. */
static void
buildProgram(ir::Function &fn)
{
    Builder bu(fn);
    const auto entry = bu.newBlock();
    const auto left = bu.newBlock();
    const auto right = bu.newBlock();
    const auto mid = bu.newBlock();    // merge
    const auto left2 = bu.newBlock();
    const auto right2 = bu.newBlock();
    const auto tail = bu.newBlock();   // merge
    fn.setEntry(entry);

    bu.setInsertPoint(entry);
    const Reg base = bu.movi(0);
    const Reg x = bu.load(base, 1);
    bu.condBr(CmpKind::LT, Builder::R(x), Builder::I(60), left, right);

    bu.setInsertPoint(left);
    bu.store(base, 2, Builder::I(1));
    bu.bru(mid);
    bu.setInsertPoint(right);
    bu.store(base, 2, Builder::I(2));
    bu.bru(mid);

    bu.setInsertPoint(mid);
    const Reg y = bu.load(base, 3);
    bu.condBr(CmpKind::GE, Builder::R(y), Builder::I(50), left2,
              right2);

    bu.setInsertPoint(left2);
    bu.store(base, 4, Builder::I(3));
    bu.bru(tail);
    bu.setInsertPoint(right2);
    bu.store(base, 4, Builder::I(4));
    bu.bru(tail);

    bu.setInsertPoint(tail);
    const Reg v = bu.load(base, 2);
    const Reg w = bu.load(base, 4);
    const Reg sum = bu.binary(Opcode::ADD, Builder::R(v), Builder::R(w));
    bu.ret(Builder::R(sum));

    fn.forEachBlockMut([](ir::BasicBlock &blk) {
        blk.setWeight(8.0);
        blk.edgeWeights().assign(
            blk.successors().size(),
            8.0 / std::max<size_t>(1, blk.successors().size()));
    });
}

int
main()
{
    ir::Module mod("demo");
    mod.setMemWords(64);
    ir::Function &fn = mod.createFunction("main");
    buildProgram(fn);

    std::printf("==== Original CFG: %zu blocks, %zu ops ====\n",
                fn.blockIds().size(), fn.totalOps());
    ir::printFunction(std::cout, fn);
    const size_t original_ops = fn.totalOps();

    {
        ir::Function plain = fn.clone();
        const auto set = region::formTreegions(plain);
        std::printf("\n==== Treegions WITHOUT tail duplication: %zu "
                    "regions ====\n",
                    set.regions().size());
        for (const auto &r : set.regions()) {
            std::printf("  root bb%u: %zu blocks, %zu paths\n",
                        r.root(), r.size(), r.pathCount());
        }
    }

    for (const double limit : {1.5, 3.0}) {
        ir::Function dup = fn.clone();
        region::TailDupLimits limits;
        limits.expansion_limit = limit;
        const auto set = region::formTreegionsTailDup(dup, limits);
        std::printf("\n==== Tail duplication, expansion limit %.1f: "
                    "%zu regions, code expansion %.2fx ====\n",
                    limit, set.regions().size(),
                    region::codeExpansionFactor(dup, original_ops));
        for (const auto &r : set.regions()) {
            std::printf("  root bb%u: %zu blocks, %zu paths\n",
                        r.root(), r.size(), r.pathCount());
        }
        if (limit == 3.0) {
            std::printf("\n  transformed CFG:\n");
            ir::printFunction(std::cout, dup);
        }
    }
    std::printf("\nWith a permissive limit, every path through the two "
                "diamonds becomes a unique root-to-leaf path of one "
                "treegion (the paper's Fig. 12 taken to its "
                "conclusion).\n");
    return 0;
}
