/**
 * @file
 * Heuristic tour: generates a switch-heavy program (the shape that
 * exposed the exit-count heuristic's flaw in gcc and perl), profiles
 * it, and compares the four treegion scheduling heuristics on the 4U
 * and 8U machines.
 *
 *   $ ./heuristic_tour [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sched/pipeline.h"
#include "support/table.h"
#include "workloads/profiler.h"
#include "workloads/synthetic.h"

using namespace treegion;

int
main(int argc, char **argv)
{
    workloads::GenParams params;
    params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
    params.top_units = 20;
    params.p_switch = 0.25;
    params.switch_width_min = 8;
    params.switch_width_max = 24;
    params.mem_words = 4096;

    auto mod = workloads::generateProgram("tour", params);
    ir::Function &fn = mod->function("main");
    const auto profile =
        workloads::profileFunction(fn, params.mem_words);
    std::printf("generated %zu blocks, %zu ops; profiled %d runs "
                "(%llu dynamic ops)\n\n",
                fn.blockIds().size(), fn.totalOps(),
                profile.completed_runs,
                static_cast<unsigned long long>(profile.total_ops));

    const double baseline = sched::estimateBaselineTime(fn);

    support::Table table({"heuristic", "4U speedup", "8U speedup"});
    for (const auto heuristic : sched::kAllHeuristics) {
        std::vector<std::string> row = {
            sched::heuristicName(heuristic)};
        for (const int width : {4, 8}) {
            ir::Function clone = fn.clone();
            sched::PipelineOptions options;
            options.scheme = sched::RegionScheme::Treegion;
            options.model = sched::MachineModel::custom(width);
            options.sched.heuristic = heuristic;
            const auto result = sched::runPipeline(clone, options);
            row.push_back(support::Table::fmt(
                baseline / result.estimated_time));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::printf("\nSpeedups are over basic-block scheduling on the "
                "1-issue machine (the paper's metric).\n");
    return 0;
}
