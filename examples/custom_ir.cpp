/**
 * @file
 * Textual IR workflow: write a function in the textual IR format,
 * parse it, verify it, schedule it, and print everything — the
 * path a user takes to feed their own code into the library.
 *
 *   $ ./custom_ir
 */

#include <cstdio>
#include <iostream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "sched/pipeline.h"
#include "vliw/interpreter.h"
#include "vliw/vliw_sim.h"

using namespace treegion;

// A counted loop summing data cells, with an early-out ladder inside.
static const char *kSource = R"(
module custom mem=128
func @main entry=bb0 gprs=16 preds=4 {
  block bb0 weight=1 edges=[1] {
    r0 = MOVI 0
    r1 = MOVI 0
    r2 = MOVI 0
    BRU bb1
  }
  block bb1 weight=11 edges=[10,1] {
    p0 = CMPP.LT r1, 10
    BRCT p0, bb2, bb5
  }
  block bb2 weight=10 edges=[2,8] {
    r3 = LD [r0 + 4]
    r4 = ADD r3, r1
    p1 = CMPP.GT r4, 100
    BRCT p1, bb4, bb3
  }
  block bb3 weight=8 edges=[8] {
    r2 = ADD r2, r4
    BRU bb4
  }
  block bb4 weight=10 edges=[10] {
    r1 = ADD r1, 1
    BRU bb1
  }
  block bb5 weight=1 {
    ST [r0 + 64], r2
    RET r2
  }
}
)";

int
main()
{
    std::string error;
    auto mod = ir::parseModule(kSource, &error);
    if (!mod) {
        std::printf("parse error: %s\n", error.c_str());
        return 1;
    }
    ir::Function &fn = mod->function("main");
    const auto problems =
        ir::verifyFunction(fn, ir::VerifyLevel::Schedulable);
    if (!problems.empty()) {
        std::printf("verifier: %s\n", problems.front().c_str());
        return 1;
    }
    std::printf("parsed and verified:\n");
    ir::printFunction(std::cout, fn);

    // Run it sequentially first.
    std::vector<int64_t> memory(128, 0);
    memory[4] = 7;
    const auto seq = vliw::runSequential(fn, memory);
    std::printf("\nsequential result: %lld (%llu ops)\n",
                static_cast<long long>(seq.ret_value),
                static_cast<unsigned long long>(seq.ops_executed));

    // Schedule as treegions and simulate.
    ir::Function compiled = fn.clone();
    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::Treegion;
    options.model = sched::MachineModel::wide4U();
    const auto result = sched::runPipeline(compiled, options);
    std::printf("\nestimated time %.0f cycles over %zu regions\n",
                result.estimated_time,
                result.schedule.regions.size());
    for (const auto &[root, rs] : result.schedule.regions) {
        std::printf("\n-- region bb%u\n%s", root,
                    rs.str(options.model.issue_width).c_str());
    }

    const auto run =
        vliw::runScheduled(compiled, result.schedule, memory);
    std::printf("\nscheduled result: %lld in %llu cycles (%s)\n",
                static_cast<long long>(run.ret_value),
                static_cast<unsigned long long>(run.cycles),
                run.ret_value == seq.ret_value ? "match" : "MISMATCH");
    return run.ret_value == seq.ret_value ? 0 : 1;
}
