/**
 * @file
 * Quickstart: build the paper's running example CFG (Figure 1's
 * topmost region), form treegions, schedule on the 4-issue machine
 * with the global-weight heuristic, print the schedule, and execute
 * it in the VLIW simulator.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <iostream>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/printer.h"
#include "sched/pipeline.h"
#include "vliw/vliw_sim.h"

using namespace treegion;
using ir::Builder;
using ir::CmpKind;
using ir::Opcode;
using ir::Reg;

int
main()
{
    // ---- 1. Build the CFG of the paper's Figure 1 (top section).
    ir::Module mod("paper-example");
    mod.setMemWords(64);
    ir::Function &fn = mod.createFunction("main");
    Builder bu(fn);

    const auto bb1 = bu.newBlock();
    const auto bb2 = bu.newBlock();
    const auto bb3 = bu.newBlock();
    const auto bb4 = bu.newBlock();
    const auto bb5 = bu.newBlock();
    const auto bb8 = bu.newBlock();
    const auto bb9 = bu.newBlock();
    fn.setEntry(bb1);

    bu.setInsertPoint(bb1);  // r1 = LD A; r2 = LD B; branch on r1>r2
    const Reg base = bu.movi(0);
    const Reg r1 = bu.load(base, 0);
    const Reg r2 = bu.load(base, 1);
    const Reg r3 = bu.binary(Opcode::ADD, Builder::R(r1), Builder::R(r2));
    bu.condBr(CmpKind::GT, Builder::R(r1), Builder::R(r2), bb8, bb2);

    bu.setInsertPoint(bb2);  // r4 = 1; branch on r3 < 100
    const Reg r4 = bu.movi(1);
    bu.condBr(CmpKind::LT, Builder::R(r3), Builder::I(100), bb3, bb4);

    bu.setInsertPoint(bb3);  // r5 = 2
    const Reg r5 = bu.movi(2);
    bu.store(base, 9, Builder::R(r4));
    bu.store(base, 8, Builder::R(r5));
    bu.bru(bb5);

    bu.setInsertPoint(bb4);  // r4 = 3; r5 = 4 (conflicts -> renaming)
    fn.appendOp(bb4, ir::makeMovi(r4, 3));
    fn.appendOp(bb4, ir::makeMovi(r5, 4));
    bu.store(base, 9, Builder::R(r4));
    bu.store(base, 8, Builder::R(r5));
    bu.bru(bb5);

    bu.setInsertPoint(bb5);  // merge of bb3/bb4
    const Reg sum = bu.binary(Opcode::ADD, Builder::R(r4),
                              Builder::R(r5));
    bu.store(base, 10, Builder::R(sum));
    bu.bru(bb9);

    bu.setInsertPoint(bb8);  // r6 = 5
    const Reg r6 = bu.movi(5);
    bu.store(base, 10, Builder::R(r6));
    bu.bru(bb9);

    bu.setInsertPoint(bb9);
    const Reg out = bu.load(base, 10);
    bu.ret(Builder::R(out));

    // The paper's profile: paths 35 (bb8), 25 (bb4), 40 (bb3).
    fn.block(bb1).setWeight(100);
    fn.block(bb1).edgeWeights() = {35, 65};
    fn.block(bb2).setWeight(65);
    fn.block(bb2).edgeWeights() = {40, 25};
    fn.block(bb3).setWeight(40);
    fn.block(bb3).edgeWeights() = {40};
    fn.block(bb4).setWeight(25);
    fn.block(bb4).edgeWeights() = {25};
    fn.block(bb5).setWeight(65);
    fn.block(bb5).edgeWeights() = {65};
    fn.block(bb8).setWeight(35);
    fn.block(bb8).edgeWeights() = {35};
    fn.block(bb9).setWeight(100);

    std::cout << "==== Input IR ====\n";
    ir::printFunction(std::cout, fn);

    // ---- 2. Run the pipeline: treegion formation + scheduling.
    sched::PipelineOptions options;
    options.scheme = sched::RegionScheme::Treegion;
    options.model = sched::MachineModel::wide4U();
    options.sched.heuristic = sched::Heuristic::GlobalWeight;

    ir::Function compiled = fn.clone();
    const auto result = sched::runPipeline(compiled, options);

    std::printf("\n==== Treegion schedules (4U, global weight) ====\n");
    std::printf("regions: %zu   estimated time: %.0f cycles\n",
                result.schedule.regions.size(), result.estimated_time);
    for (const auto &[root, rs] : result.schedule.regions) {
        std::printf("\n-- region rooted at bb%u (%d cycles)\n", root,
                    rs.length);
        std::fputs(rs.str(options.model.issue_width).c_str(), stdout);
        for (const auto &exit : rs.exits) {
            std::printf("   exit at cycle %d, weight %.0f -> %s\n",
                        exit.cycle, exit.weight,
                        exit.is_ret
                            ? "return"
                            : ("bb" + std::to_string(exit.target))
                                  .c_str());
        }
    }

    // ---- 3. Execute the schedule on a concrete input.
    std::vector<int64_t> memory(64, 0);
    memory[0] = 30;  // A
    memory[1] = 40;  // B: A <= B and A+B < 100 -> path bb3, result 3
    const auto run = vliw::runScheduled(compiled, result.schedule,
                                        memory);
    std::printf("\n==== Simulation (A=30, B=40) ====\n");
    std::printf("result: %lld (expected 3), %llu cycles, "
                "%llu regions visited\n",
                static_cast<long long>(run.ret_value),
                static_cast<unsigned long long>(run.cycles),
                static_cast<unsigned long long>(run.regions_executed));
    return run.ret_value == 3 ? 0 : 1;
}
