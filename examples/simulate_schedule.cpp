/**
 * @file
 * End-to-end validation demo: generates a SPECint95 proxy, compiles
 * it with every region scheme, and runs each schedule against the
 * sequential interpreter on fresh inputs, reporting simulated cycles
 * and the equivalence verdict. This is the library's "trust but
 * verify" workflow.
 *
 *   $ ./simulate_schedule [proxy-index 0..7]
 */

#include <cstdio>
#include <cstdlib>

#include "sched/pipeline.h"
#include "vliw/equivalence.h"
#include "workloads/profiler.h"
#include "workloads/spec_proxy.h"

using namespace treegion;

int
main(int argc, char **argv)
{
    const auto proxies = workloads::specint95Proxies();
    const size_t index =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) % 8 : 0;
    const auto &spec = proxies[index];

    auto mod = workloads::buildProxy(spec);
    ir::Function &original = mod->function("main");
    workloads::profileFunction(original, spec.params.mem_words);
    std::printf("proxy '%s': %zu blocks, %zu ops\n\n",
                spec.name.c_str(), original.blockIds().size(),
                original.totalOps());

    const sched::RegionScheme schemes[] = {
        sched::RegionScheme::BasicBlock, sched::RegionScheme::Slr,
        sched::RegionScheme::Superblock, sched::RegionScheme::Treegion,
        sched::RegionScheme::TreegionTailDup,
        sched::RegionScheme::Hyperblock};

    for (const auto scheme : schemes) {
        ir::Function transformed = original.clone();
        sched::PipelineOptions options;
        options.scheme = scheme;
        options.model = sched::MachineModel::wide4U();
        const auto result = sched::runPipeline(transformed, options);

        uint64_t total_cycles = 0;
        int checked = 0, ok = 0;
        for (uint64_t input = 0; input < 5; ++input) {
            auto memory = workloads::makeInputMemory(
                spec.params.mem_words, 1000 + input, 100);
            const auto report = vliw::checkEquivalence(
                original, transformed, result.schedule, memory);
            ++checked;
            if (report.ok) {
                ++ok;
                total_cycles += report.vliw_cycles;
            } else {
                std::printf("  !! input %llu: %s\n",
                            static_cast<unsigned long long>(input),
                            report.detail.c_str());
            }
        }
        std::printf("%-8s regions=%-4zu estimate=%-8.0f "
                    "sim cycles (5 inputs)=%-8llu equivalence %d/%d\n",
                    sched::regionSchemeName(scheme).c_str(),
                    result.schedule.regions.size(),
                    result.estimated_time,
                    static_cast<unsigned long long>(total_cycles),
                    ok, checked);
    }
    std::printf("\nEvery scheme's schedule must compute exactly what "
                "the sequential program computes; the simulator "
                "executes predication, speculation and the exit "
                "reconciliation copies for real.\n");
    return 0;
}
